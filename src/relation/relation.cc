#include "relation/relation.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/parallel_sort.h"
#include "common/trace.h"

namespace mpcqp {

Schema::Schema(std::vector<std::string> attributes)
    : attributes_(std::move(attributes)) {}

const std::string& Schema::attribute(int index) const {
  MPCQP_CHECK_GE(index, 0);
  MPCQP_CHECK_LT(index, arity());
  return attributes_[index];
}

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < arity(); ++i) {
    if (attributes_[i] == name) return i;
  }
  return -1;
}

Relation::Relation(int arity) : arity_(arity) { MPCQP_CHECK_GE(arity, 0); }

Relation::Relation(int arity, std::vector<Value> data) : arity_(arity) {
  MPCQP_CHECK_GT(arity, 0);
  MPCQP_CHECK_EQ(data.size() % arity, 0u);
  if (!data.empty()) {
    payload_ = std::make_shared<Payload>();
    payload_->data = std::move(data);
  }
}

Relation Relation::FromRows(std::initializer_list<std::vector<Value>> rows) {
  return FromRows(std::vector<std::vector<Value>>(rows));
}

Relation Relation::FromRows(const std::vector<std::vector<Value>>& rows) {
  MPCQP_CHECK(!rows.empty()) << "use Relation(arity) for empty relations";
  Relation result(static_cast<int>(rows.begin()->size()));
  result.Reserve(static_cast<int64_t>(rows.size()));
  for (const auto& row : rows) result.AppendRow(row);
  return result;
}

const std::vector<Value>& Relation::EmptyData() {
  static const std::vector<Value> kEmpty;
  return kEmpty;
}

std::vector<Value>& Relation::Mutable() {
  if (!payload_) {
    payload_ = std::make_shared<Payload>();
  } else if (payload_.use_count() > 1) {
    // Shared with another handle: detach by cloning. Readers of the old
    // payload are unaffected; it stays alive through their references.
    auto owned = std::make_shared<Payload>();
    owned->data = payload_->data;
    payload_ = std::move(owned);
    const int64_t bytes =
        static_cast<int64_t>(payload_->data.size() * sizeof(Value));
    TraceCounters::cow_detaches.fetch_add(1, std::memory_order_relaxed);
    TraceCounters::cow_detach_bytes.fetch_add(bytes,
                                              std::memory_order_relaxed);
    // Charge the detach to the query executing on this thread, if any
    // (Cluster::ScopedExecution + ThreadPool's ExecContext propagation) —
    // this is what keeps per-query COW metrics exact when many queries
    // share one pool.
    if (const ExecContext* context = CurrentExecContext();
        context != nullptr && context->cow_detaches != nullptr) {
      context->cow_detaches->fetch_add(1, std::memory_order_relaxed);
      context->cow_detach_bytes->fetch_add(bytes, std::memory_order_relaxed);
    }
  } else {
    // Uniquely owned — but use_count() is a relaxed load, so observing
    // the last sharer's release does not order this thread after that
    // sharer's detach (its clone may still be reading these bytes when
    // an in-place write below reallocates them). Touching the control
    // block with an acquire-release RMW pair adopts the sharer's work
    // before any mutation.
    std::shared_ptr<Payload> acquire_last_detach(payload_);
    acquire_last_detach.reset();
  }
  return payload_->data;
}

Value* Relation::ResizeRowsForOverwrite(int64_t rows) {
  MPCQP_CHECK_GT(arity_, 0);
  MPCQP_CHECK_GE(rows, 0);
  // Fresh payload: never clone bytes that are about to be overwritten.
  payload_ = std::make_shared<Payload>();
  payload_->data.resize(static_cast<size_t>(rows) * arity_);
  return payload_->data.data();
}

const Value* Relation::row(int64_t row) const {
  MPCQP_CHECK_GT(arity_, 0);
  MPCQP_CHECK_GE(row, 0);
  MPCQP_CHECK_LT(row, size());
  return data().data() + static_cast<size_t>(row) * arity_;
}

Value Relation::at(int64_t row, int col) const {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, arity_);
  return this->row(row)[col];
}

void Relation::AppendRow(const Value* values) {
  MPCQP_CHECK_GT(arity_, 0);
  std::vector<Value>& data = Mutable();
  data.insert(data.end(), values, values + arity_);
}

void Relation::AppendRow(const std::vector<Value>& values) {
  MPCQP_CHECK_EQ(static_cast<int>(values.size()), arity_);
  if (arity_ == 0) {
    ++nullary_count_;
    return;
  }
  AppendRow(values.data());
}

void Relation::AppendRow(std::initializer_list<Value> values) {
  AppendRow(std::vector<Value>(values));
}

void Relation::AppendRowFrom(const Relation& other, int64_t row) {
  MPCQP_CHECK_EQ(other.arity_, arity_);
  if (arity_ == 0) {
    ++nullary_count_;
    return;
  }
  // Keep the source payload alive (and force a detach on self-append) so
  // the source pointer stays valid while this handle grows.
  const std::shared_ptr<Payload> keep = other.payload_;
  AppendRow(other.row(row));
}

void Relation::Append(const Relation& other) {
  AppendRange(other, 0, other.size());
}

void Relation::AppendRange(const Relation& other, int64_t begin, int64_t end) {
  MPCQP_CHECK_EQ(other.arity_, arity_);
  MPCQP_CHECK_GE(begin, 0);
  MPCQP_CHECK_LE(begin, end);
  MPCQP_CHECK_LE(end, other.size());
  if (arity_ == 0) {
    nullary_count_ += end - begin;
    return;
  }
  if (begin == end) return;
  // As in AppendRowFrom: pin the source payload so self-appends detach
  // instead of reading through a reallocated buffer.
  const std::shared_ptr<Payload> keep = other.payload_;
  std::vector<Value>& data = Mutable();
  // Reserve the exact target up front (one reallocation instead of a
  // geometric growth chain), but never below 1.5x the current capacity:
  // repeated AppendRange calls (Collect-style concatenation loops) must
  // keep their amortized-O(1) growth rather than reallocating per call.
  const size_t needed =
      data.size() + static_cast<size_t>(end - begin) * arity_;
  if (needed > data.capacity()) {
    data.reserve(std::max(needed, data.capacity() + data.capacity() / 2));
  }
  const Value* src = keep->data.data() + static_cast<size_t>(begin) * arity_;
  data.insert(data.end(), src, src + static_cast<size_t>(end - begin) * arity_);
}

void Relation::AppendNullaryRow() {
  MPCQP_CHECK_EQ(arity_, 0);
  ++nullary_count_;
}

void Relation::Reserve(int64_t rows) {
  if (arity_ > 0 && rows > 0) {
    Mutable().reserve(static_cast<size_t>(rows) * arity_);
  }
}

void Relation::Clear() {
  // Dropping the reference is the COW-friendly clear: sharers keep the old
  // payload, this handle starts empty.
  payload_.reset();
  nullary_count_ = 0;
}

void Relation::SortRows(ThreadPool* pool) {
  if (arity_ == 0 || empty()) return;
  SortRowsBuffer(pool, arity_, Mutable(), {});
}

void Relation::SortRowsBy(const std::vector<int>& key_cols,
                          ThreadPool* pool) {
  for (int c : key_cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, arity_);
  }
  if (arity_ == 0 || empty()) return;
  SortRowsBuffer(pool, arity_, Mutable(), key_cols);
}

bool operator==(const Relation& a, const Relation& b) {
  if (a.arity_ != b.arity_ || a.nullary_count_ != b.nullary_count_) {
    return false;
  }
  if (a.payload_ == b.payload_) return true;  // Shared payload: equal.
  return a.data() == b.data();
}

std::string Relation::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << "Relation(arity=" << arity_ << ", rows=" << size() << ")";
  const int64_t limit = std::min<int64_t>(size(), max_rows);
  for (int64_t i = 0; i < limit && arity_ > 0; ++i) {
    os << "\n  (";
    for (int c = 0; c < arity_; ++c) {
      if (c > 0) os << ", ";
      os << at(i, c);
    }
    os << ")";
  }
  if (limit < size()) os << "\n  ... " << (size() - limit) << " more";
  return os.str();
}

}  // namespace mpcqp
