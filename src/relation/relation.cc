#include "relation/relation.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace mpcqp {

Schema::Schema(std::vector<std::string> attributes)
    : attributes_(std::move(attributes)) {}

const std::string& Schema::attribute(int index) const {
  MPCQP_CHECK_GE(index, 0);
  MPCQP_CHECK_LT(index, arity());
  return attributes_[index];
}

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < arity(); ++i) {
    if (attributes_[i] == name) return i;
  }
  return -1;
}

Relation::Relation(int arity) : arity_(arity) { MPCQP_CHECK_GE(arity, 0); }

Relation::Relation(int arity, std::vector<Value> data)
    : arity_(arity), data_(std::move(data)) {
  MPCQP_CHECK_GT(arity, 0);
  MPCQP_CHECK_EQ(data_.size() % arity, 0u);
}

Relation Relation::FromRows(std::initializer_list<std::vector<Value>> rows) {
  return FromRows(std::vector<std::vector<Value>>(rows));
}

Relation Relation::FromRows(const std::vector<std::vector<Value>>& rows) {
  MPCQP_CHECK(!rows.empty()) << "use Relation(arity) for empty relations";
  Relation result(static_cast<int>(rows.begin()->size()));
  for (const auto& row : rows) result.AppendRow(row);
  return result;
}

const Value* Relation::row(int64_t row) const {
  MPCQP_CHECK_GT(arity_, 0);
  MPCQP_CHECK_GE(row, 0);
  MPCQP_CHECK_LT(row, size());
  return data_.data() + static_cast<size_t>(row) * arity_;
}

Value Relation::at(int64_t row, int col) const {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, arity_);
  return this->row(row)[col];
}

void Relation::AppendRow(const Value* values) {
  MPCQP_CHECK_GT(arity_, 0);
  data_.insert(data_.end(), values, values + arity_);
}

void Relation::AppendRow(const std::vector<Value>& values) {
  MPCQP_CHECK_EQ(static_cast<int>(values.size()), arity_);
  if (arity_ == 0) {
    ++nullary_count_;
    return;
  }
  AppendRow(values.data());
}

void Relation::AppendRow(std::initializer_list<Value> values) {
  AppendRow(std::vector<Value>(values));
}

void Relation::AppendRowFrom(const Relation& other, int64_t row) {
  MPCQP_CHECK_EQ(other.arity_, arity_);
  if (arity_ == 0) {
    ++nullary_count_;
    return;
  }
  AppendRow(other.row(row));
}

void Relation::Append(const Relation& other) {
  MPCQP_CHECK_EQ(other.arity_, arity_);
  if (arity_ == 0) {
    nullary_count_ += other.nullary_count_;
    return;
  }
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
}

void Relation::AppendNullaryRow() {
  MPCQP_CHECK_EQ(arity_, 0);
  ++nullary_count_;
}

void Relation::Reserve(int64_t rows) {
  if (arity_ > 0) data_.reserve(static_cast<size_t>(rows) * arity_);
}

void Relation::Clear() {
  data_.clear();
  nullary_count_ = 0;
}

namespace {

// Sorts row indices of `rel` by `key_cols` then all columns, and rebuilds
// the flat buffer in that order.
void SortRowsImpl(int arity, std::vector<Value>& data,
                  const std::vector<int>& key_cols) {
  const int64_t n = static_cast<int64_t>(data.size()) / arity;
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const Value* ra = data.data() + static_cast<size_t>(a) * arity;
    const Value* rb = data.data() + static_cast<size_t>(b) * arity;
    for (int c : key_cols) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    for (int c = 0; c < arity; ++c) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    return false;
  });
  std::vector<Value> sorted;
  sorted.reserve(data.size());
  for (int64_t i : order) {
    const Value* r = data.data() + static_cast<size_t>(i) * arity;
    sorted.insert(sorted.end(), r, r + arity);
  }
  data = std::move(sorted);
}

}  // namespace

void Relation::SortRows() {
  if (arity_ == 0 || data_.empty()) return;
  SortRowsImpl(arity_, data_, {});
}

void Relation::SortRowsBy(const std::vector<int>& key_cols) {
  for (int c : key_cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, arity_);
  }
  if (arity_ == 0 || data_.empty()) return;
  SortRowsImpl(arity_, data_, key_cols);
}

bool operator==(const Relation& a, const Relation& b) {
  return a.arity_ == b.arity_ && a.nullary_count_ == b.nullary_count_ &&
         a.data_ == b.data_;
}

std::string Relation::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << "Relation(arity=" << arity_ << ", rows=" << size() << ")";
  const int64_t limit = std::min<int64_t>(size(), max_rows);
  for (int64_t i = 0; i < limit && arity_ > 0; ++i) {
    os << "\n  (";
    for (int c = 0; c < arity_; ++c) {
      if (c > 0) os << ", ";
      os << at(i, c);
    }
    os << ")";
  }
  if (limit < size()) os << "\n  ... " << (size() - limit) << " more";
  return os.str();
}

}  // namespace mpcqp
