#ifndef MPCQP_RELATION_RELATION_OPS_H_
#define MPCQP_RELATION_RELATION_OPS_H_

#include <functional>
#include <vector>

#include "common/statusor.h"
#include "relation/columnar.h"
#include "relation/relation.h"
#include "relation/relation_view.h"

namespace mpcqp {

// Local (single-node) relational operators. The parallel algorithms in
// src/join, src/multiway, src/acyclic compose these with the exchange
// primitives of src/mpc; the choice of local algorithm is independent of
// the parallel algorithm (slide 32 of the deck).
//
// All operators take RelationViews — a whole Relation converts implicitly,
// so callers pass fragments, row spans, or selection views without
// materializing copies. Outputs are always owning Relations. Inputs are
// borrowed only for the duration of the call.

// Projection onto `cols` (columns may repeat or reorder). Multiset
// semantics: duplicates are kept.
Relation Project(RelationView rel, const std::vector<int>& cols);

// Removes duplicate rows (sorts an index permutation internally — the
// input is not copied; output is sorted). `pool` (optional) parallelizes
// the permutation sort on large inputs.
Relation Dedup(RelationView rel, ThreadPool* pool = nullptr);

// Rows for which `pred` returns true.
Relation Filter(RelationView rel,
                const std::function<bool(const Value*)>& pred);

// Single-column range selection: the indices (ascending) of rows whose
// column `col` lies in [lo, hi]. The result is a selection vector —
// compose it with RelationView(rel, selection) to run further operators
// over the matches without materializing them. With a pool the scan is
// morsel-parallel (count -> prefix -> fill over disjoint ranges), and the
// index list is bit-identical for every (pool, morsel_rows, layout):
// `layout` only decides whether the predicate strides over rows or runs
// over a compacted copy of the column (kAuto: compact when the row is
// wide, see UseColumnarScan).
std::vector<int64_t> SelectRange(RelationView rel, int col, Value lo,
                                 Value hi, ThreadPool* pool = nullptr,
                                 int64_t morsel_rows = 0,
                                 LayoutMode layout = LayoutMode::kAuto);

// The same predicate over a column-major relation: a tight unit-stride
// loop over column(col). Produces exactly the index list of the row-major
// overload on the transposed data.
std::vector<int64_t> SelectRange(const ColumnarRelation& rel, int col,
                                 Value lo, Value hi,
                                 ThreadPool* pool = nullptr,
                                 int64_t morsel_rows = 0);

// Appends all rows of `b` to a materialization of `a`. Arities must match.
Relation UnionAll(RelationView a, RelationView b);

// Equi-join of `left` and `right` on left_keys[i] == right_keys[i].
// Output columns: all of left, then the columns of right that are not join
// keys (in their original order). Hash-based.
Relation HashJoinLocal(RelationView left, RelationView right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys);

// Same contract as HashJoinLocal, sort-merge based. Output row order may
// differ; contents (as multisets) are identical.
Relation SortMergeJoinLocal(RelationView left, RelationView right,
                            const std::vector<int>& left_keys,
                            const std::vector<int>& right_keys);

// Reference nested-loop implementation of the same contract, used by tests.
Relation NestedLoopJoinLocal(RelationView left, RelationView right,
                             const std::vector<int>& left_keys,
                             const std::vector<int>& right_keys);

// Rows of `left` with at least one match in `right` (semijoin).
Relation SemijoinLocal(RelationView left, RelationView right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys);

// Rows of `left` with no match in `right` (antijoin).
Relation AntijoinLocal(RelationView left, RelationView right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys);

// SELECT group_cols, SUM(value_col) ... GROUP BY group_cols.
// Output: group columns then the sum. Output sorted by group columns.
// Fails with kOutOfRange if any group's sum overflows Value.
StatusOr<Relation> GroupBySum(RelationView rel,
                              const std::vector<int>& group_cols,
                              int value_col);

// The aggregate functions GroupByAggregate supports. All are algebraic
// (partials combine associatively), which is what lets the distributed
// group-by pre-aggregate with combiners.
enum class AggregateOp {
  kSum,
  kCount,  // value_col ignored; pass value_col = -1 to skip it entirely.
  kMin,
  kMax,
};

// SELECT group_cols, OP(value_col) ... GROUP BY group_cols.
// Output: group columns then the aggregate; sorted by group columns.
// `group_cols` may be empty: every row falls into one scalar group, so a
// non-empty input yields exactly one output row (and an empty input yields
// none — SQL's GROUP BY () semantics, which keeps partial aggregation of
// empty fragments neutral). kSum and kCount fail with kOutOfRange instead
// of silently wrapping when an accumulator exceeds the Value range; since
// addends are non-negative, partial sums are monotone and the error is
// independent of accumulation order.
StatusOr<Relation> GroupByAggregate(RelationView rel,
                                    const std::vector<int>& group_cols,
                                    int value_col, AggregateOp op);

// True if `a` and `b` contain the same rows with the same multiplicities
// (order-insensitive). The workhorse of correctness tests. `pool`
// (optional) parallelizes the permutation sorts on large inputs.
bool MultisetEqual(RelationView a, RelationView b,
                   ThreadPool* pool = nullptr);

// Per-value frequency ("degree") of column `col`; returned sorted by value.
// Output arity 2: (value, count).
Relation DegreeCount(RelationView rel, int col);

}  // namespace mpcqp

#endif  // MPCQP_RELATION_RELATION_OPS_H_
