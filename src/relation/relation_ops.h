#ifndef MPCQP_RELATION_RELATION_OPS_H_
#define MPCQP_RELATION_RELATION_OPS_H_

#include <functional>
#include <vector>

#include "relation/relation.h"

namespace mpcqp {

// Local (single-node) relational operators. The parallel algorithms in
// src/join, src/multiway, src/acyclic compose these with the exchange
// primitives of src/mpc; the choice of local algorithm is independent of
// the parallel algorithm (slide 32 of the deck).

// Projection onto `cols` (columns may repeat or reorder). Multiset
// semantics: duplicates are kept.
Relation Project(const Relation& rel, const std::vector<int>& cols);

// Removes duplicate rows (sorts internally; output is sorted).
Relation Dedup(const Relation& rel);

// Rows for which `pred` returns true.
Relation Filter(const Relation& rel,
                const std::function<bool(const Value*)>& pred);

// Appends all rows of `b` to a copy of `a`. Arities must match.
Relation UnionAll(const Relation& a, const Relation& b);

// Equi-join of `left` and `right` on left_keys[i] == right_keys[i].
// Output columns: all of left, then the columns of right that are not join
// keys (in their original order). Hash-based.
Relation HashJoinLocal(const Relation& left, const Relation& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys);

// Same contract as HashJoinLocal, sort-merge based. Output row order may
// differ; contents (as multisets) are identical.
Relation SortMergeJoinLocal(const Relation& left, const Relation& right,
                            const std::vector<int>& left_keys,
                            const std::vector<int>& right_keys);

// Reference nested-loop implementation of the same contract, used by tests.
Relation NestedLoopJoinLocal(const Relation& left, const Relation& right,
                             const std::vector<int>& left_keys,
                             const std::vector<int>& right_keys);

// Rows of `left` with at least one match in `right` (semijoin).
Relation SemijoinLocal(const Relation& left, const Relation& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys);

// Rows of `left` with no match in `right` (antijoin).
Relation AntijoinLocal(const Relation& left, const Relation& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys);

// SELECT group_cols, SUM(value_col) ... GROUP BY group_cols.
// Output: group columns then the sum. Output sorted by group columns.
Relation GroupBySum(const Relation& rel, const std::vector<int>& group_cols,
                    int value_col);

// The aggregate functions GroupByAggregate supports. All are algebraic
// (partials combine associatively), which is what lets the distributed
// group-by pre-aggregate with combiners.
enum class AggregateOp {
  kSum,
  kCount,  // value_col ignored.
  kMin,
  kMax,
};

// SELECT group_cols, OP(value_col) ... GROUP BY group_cols.
// Output: group columns then the aggregate; sorted by group columns.
Relation GroupByAggregate(const Relation& rel,
                          const std::vector<int>& group_cols, int value_col,
                          AggregateOp op);

// True if `a` and `b` contain the same rows with the same multiplicities
// (order-insensitive). The workhorse of correctness tests.
bool MultisetEqual(const Relation& a, const Relation& b);

// Per-value frequency ("degree") of column `col`; returned sorted by value.
// Output arity 2: (value, count).
Relation DegreeCount(const Relation& rel, int col);

}  // namespace mpcqp

#endif  // MPCQP_RELATION_RELATION_OPS_H_
