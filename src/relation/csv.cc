#include "relation/csv.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace mpcqp {

StatusOr<Relation> ParseCsvText(const std::string& text, int expected_arity) {
  if (expected_arity < -1) {
    return InvalidArgumentError("expected_arity must be >= -1, got " +
                                std::to_string(expected_arity));
  }
  Relation result(std::max(expected_arity, 0));
  bool arity_known = expected_arity >= 0;
  std::vector<Value> row;
  size_t line_no = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ++line_no;
    // Trim trailing CR (Windows line endings) and skip blank lines.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;

    row.clear();
    size_t pos = 0;
    while (pos <= line.size()) {
      size_t comma = line.find(',', pos);
      if (comma == std::string::npos) comma = line.size();
      const std::string field = line.substr(pos, comma - pos);
      Value value = 0;
      // Manual parse: unsigned decimal only, with surrounding spaces.
      size_t i = 0;
      while (i < field.size() &&
             std::isspace(static_cast<unsigned char>(field[i]))) {
        ++i;
      }
      size_t digits = 0;
      constexpr Value kMax = ~Value{0};
      while (i < field.size() &&
             std::isdigit(static_cast<unsigned char>(field[i]))) {
        const Value digit = static_cast<Value>(field[i] - '0');
        // value * 10 + digit would wrap past 2^64; report instead of
        // silently storing a garbage value.
        if (value > kMax / 10 || (value == kMax / 10 && digit > kMax % 10)) {
          return InvalidArgumentError(
              "line " + std::to_string(line_no) +
              ": integer overflow in field '" + field + "'");
        }
        value = value * 10 + digit;
        ++i;
        ++digits;
      }
      while (i < field.size() &&
             std::isspace(static_cast<unsigned char>(field[i]))) {
        ++i;
      }
      if (digits == 0 || i != field.size()) {
        return InvalidArgumentError("line " + std::to_string(line_no) +
                                    ": bad field '" + field + "'");
      }
      row.push_back(value);
      pos = comma + 1;
      if (comma == line.size()) break;
    }

    if (!arity_known) {
      result = Relation(static_cast<int>(row.size()));
      arity_known = true;
    }
    if (static_cast<int>(row.size()) != result.arity()) {
      return InvalidArgumentError(
          "line " + std::to_string(line_no) + ": arity " +
          std::to_string(row.size()) + " != " +
          std::to_string(result.arity()));
    }
    result.AppendRow(row);
  }
  if (!arity_known) {
    return InvalidArgumentError("empty CSV with unknown arity");
  }
  return result;
}

std::string ToCsvText(const Relation& rel) {
  std::ostringstream os;
  for (int64_t i = 0; i < rel.size(); ++i) {
    for (int c = 0; c < rel.arity(); ++c) {
      if (c > 0) os << ',';
      os << rel.at(i, c);
    }
    os << '\n';
  }
  return os.str();
}

StatusOr<Relation> ReadCsvFile(const std::string& path, int expected_arity) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsvText(buffer.str(), expected_arity);
}

Status WriteCsvFile(const Relation& rel, const std::string& path) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot write " + path);
  out << ToCsvText(rel);
  return out ? OkStatus() : InternalError("write failed: " + path);
}

}  // namespace mpcqp
