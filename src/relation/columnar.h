#ifndef MPCQP_RELATION_COLUMNAR_H_
#define MPCQP_RELATION_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relation/relation.h"
#include "relation/relation_view.h"

namespace mpcqp {

class ThreadPool;

// Which physical layout the hot local kernels (route hashing, selections,
// semijoin probes, group-by scans) iterate over. The layout NEVER changes
// results: every kernel produces bit-identical outputs, CostReports, and
// strategy choices for every mode — only the memory access pattern (and
// therefore wall time) differs. kAuto picks per kernel from arity
// heuristics (see UseColumnarRoute / UseColumnarScan below), which depend
// on data shape only, never on thread count or morsel size.
enum class LayoutMode {
  kRow = 0,       // Always stride over row-major payloads (the seed path).
  kColumnar = 1,  // Force the columnar kernels wherever one exists.
  kAuto = 2,      // Per-kernel arity heuristics (the default).
};

const char* LayoutModeName(LayoutMode mode);
// Parses "row" / "columnar" / "auto"; returns false on anything else.
bool ParseLayoutMode(const std::string& text, LayoutMode* out);

// ---- Layout heuristics (data-derived only; see LayoutMode) ----

// Arity at or above which kAuto extracts the key column into a contiguous
// buffer before the route pass: at this row width every strided key load
// touches a fresh cache line, so a separate gather pass plus a pure
// vectorized BucketMany beats the fused gather-per-morsel loop.
inline constexpr int kColumnarRouteMinArity = 4;
// Row count below which the route extraction is not worth its setup.
inline constexpr int64_t kColumnarRouteMinRows = 1 << 14;
// For scans (selection / group-by), kAuto goes columnar when the kernel
// reads at most this fraction of the row: arity >= kColumnarScanArityFactor
// * columns_read. Narrower rows are cheaper to stride over directly.
inline constexpr int kColumnarScanArityFactor = 3;

// True if the exchange route pass should gather the key column into a
// contiguous buffer (metered under Phase::kTranspose) and bucket it with
// one vectorized pass. An arity-1 relation is already a contiguous
// column, so the fused path is used even under kColumnar.
bool UseColumnarRoute(LayoutMode mode, int arity, int64_t rows);

// True if a scan kernel reading `columns_read` of `arity` columns should
// compact those columns out of the wide rows before the hot loop.
bool UseColumnarScan(LayoutMode mode, int arity, int columns_read);

// ---- Shared key-gather helper ----
// The one strided gather loop: out[i] = row i's column `col`, for rows
// [begin, end) of a row-major buffer. Every kernel that still needs a
// row-major gather (exchange route, KeyIndex build, group-by scans) calls
// this instead of hand-rolling the stride arithmetic.
void GatherKeyColumn(const Value* base, int arity, int col, int64_t begin,
                     int64_t end, Value* out);
// View-aware variant: honors the view's selection vector, if any.
void GatherKeyColumn(RelationView view, int col, int64_t begin, int64_t end,
                     Value* out);

// A relation stored column-major: one flat buffer where column c occupies
// [c * rows, (c + 1) * rows). The contiguous columns are what make the
// hot kernels vectorizable — HashMany/BucketMany over column(key), tight
// predicate loops for selections, and group-by scans that never touch
// non-grouping columns.
//
// Copies are copy-on-write with exactly Relation's semantics: handles
// share an immutable payload, Mutable() detaches (cloning only if another
// handle still shares), and SharesPayloadWith is the diagnostic hook.
// The row count is fixed at construction/transpose time — columnar
// storage is a scan-optimized snapshot, not an append target; build
// row-major, transpose, scan.
class ColumnarRelation {
 public:
  ColumnarRelation() : arity_(0) {}
  explicit ColumnarRelation(int arity);

  // Transposes a row-major relation. With a pool, the transpose tiles
  // rows into morsels of `morsel_rows` (<= 0 means one morsel) and runs
  // work-stealing parallel; the output bytes are identical for every
  // (pool, morsel_rows) since morsels write disjoint row ranges. Callers
  // on a metered path time this under Phase::kTranspose.
  static ColumnarRelation FromRowMajor(const Relation& rel,
                                       ThreadPool* pool = nullptr,
                                       int64_t morsel_rows = 0);

  // Inverse transpose, same parallelism and determinism contract.
  Relation ToRowMajor(ThreadPool* pool = nullptr,
                      int64_t morsel_rows = 0) const;

  int arity() const { return arity_; }
  int64_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  // Pointer to column `col`: size() contiguous values. Invalid for
  // nullary or empty relations.
  const Value* column(int col) const;

  Value at(int64_t row, int col) const;

  // Explicit COW detach: clones the payload if shared, returns the
  // now-private flat column-major buffer for in-place mutation (e.g.
  // rewriting one column). The shape (arity, rows) is unchanged.
  std::vector<Value>& Mutable();

  bool SharesPayloadWith(const ColumnarRelation& other) const {
    return payload_ != nullptr && payload_ == other.payload_;
  }

  // Exact equality: same arity, same rows in the same order.
  friend bool operator==(const ColumnarRelation& a, const ColumnarRelation& b);

 private:
  struct Payload {
    std::vector<Value> data;  // Column-major; column c at [c*rows, (c+1)*rows).
  };

  int arity_;
  int64_t rows_ = 0;
  std::shared_ptr<Payload> payload_;
};

}  // namespace mpcqp

#endif  // MPCQP_RELATION_COLUMNAR_H_
