#include "relation/columnar.h"

#include <functional>
#include <utility>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace mpcqp {

const char* LayoutModeName(LayoutMode mode) {
  switch (mode) {
    case LayoutMode::kRow:
      return "row";
    case LayoutMode::kColumnar:
      return "columnar";
    case LayoutMode::kAuto:
      return "auto";
  }
  return "unknown";
}

bool ParseLayoutMode(const std::string& text, LayoutMode* out) {
  if (text == "row") {
    *out = LayoutMode::kRow;
  } else if (text == "columnar") {
    *out = LayoutMode::kColumnar;
  } else if (text == "auto") {
    *out = LayoutMode::kAuto;
  } else {
    return false;
  }
  return true;
}

bool UseColumnarRoute(LayoutMode mode, int arity, int64_t rows) {
  // An arity-1 relation IS a contiguous key column; the fused route loop
  // already bucket-hashes it with unit stride.
  if (arity <= 1) return false;
  switch (mode) {
    case LayoutMode::kRow:
      return false;
    case LayoutMode::kColumnar:
      return true;
    case LayoutMode::kAuto:
      return arity >= kColumnarRouteMinArity && rows >= kColumnarRouteMinRows;
  }
  return false;
}

bool UseColumnarScan(LayoutMode mode, int arity, int columns_read) {
  MPCQP_CHECK_GE(columns_read, 0);
  // Reading (nearly) the whole row: compaction would copy everything the
  // scan touches anyway.
  if (columns_read >= arity) return false;
  switch (mode) {
    case LayoutMode::kRow:
      return false;
    case LayoutMode::kColumnar:
      return true;
    case LayoutMode::kAuto:
      return arity >= kColumnarScanArityFactor * (columns_read > 0
                                                      ? columns_read
                                                      : 1);
  }
  return false;
}

void GatherKeyColumn(const Value* base, int arity, int col, int64_t begin,
                     int64_t end, Value* out) {
  const Value* src = base + static_cast<size_t>(begin) * arity + col;
  simd::GatherStride(src, arity, end - begin, out);
}

void GatherKeyColumn(RelationView view, int col, int64_t begin, int64_t end,
                     Value* out) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, view.arity());
  MPCQP_CHECK_GE(begin, 0);
  MPCQP_CHECK_LE(begin, end);
  MPCQP_CHECK_LE(end, view.size());
  if (begin == end) return;
  const int arity = view.arity();
  const Value* base = view.base();
  if (const int64_t* sel = view.selection(); sel != nullptr) {
    simd::GatherIndexed(base, sel + begin, end - begin, arity, col, out);
    return;
  }
  GatherKeyColumn(base, arity, col, begin, end, out);
}

ColumnarRelation::ColumnarRelation(int arity) : arity_(arity) {
  MPCQP_CHECK_GE(arity, 0);
}

namespace {

// Runs body(begin, end) over [0, rows): morsel-tiled on the pool when one
// is given, inline otherwise. The decomposition covers disjoint ranges, so
// transpose outputs are bit-identical for every (pool, morsel_rows).
void ForEachRowRange(ThreadPool* pool, int64_t rows, int64_t morsel_rows,
                     const std::function<void(int64_t, int64_t)>& body) {
  if (pool != nullptr && morsel_rows > 0 && rows > morsel_rows) {
    pool->ParallelForGrained(rows, morsel_rows, body);
  } else {
    body(0, rows);
  }
}

}  // namespace

ColumnarRelation ColumnarRelation::FromRowMajor(const Relation& rel,
                                                ThreadPool* pool,
                                                int64_t morsel_rows) {
  ColumnarRelation out(rel.arity());
  out.rows_ = rel.size();
  if (out.arity_ == 0 || out.rows_ == 0) return out;
  out.payload_ = std::make_shared<Payload>();
  out.payload_->data.resize(static_cast<size_t>(out.rows_) * out.arity_);
  const Value* src = rel.data().data();
  Value* dst = out.payload_->data.data();
  const int arity = out.arity_;
  const int64_t rows = out.rows_;
  // Contiguous row reads fan out into `arity` sequential write streams
  // (one per column) — the cache-friendly direction for small arities.
  ForEachRowRange(pool, rows, morsel_rows, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const Value* row = src + static_cast<size_t>(r) * arity;
      for (int c = 0; c < arity; ++c) {
        dst[static_cast<size_t>(c) * rows + r] = row[c];
      }
    }
  });
  return out;
}

Relation ColumnarRelation::ToRowMajor(ThreadPool* pool,
                                      int64_t morsel_rows) const {
  Relation out(arity_);
  if (arity_ == 0) {
    for (int64_t i = 0; i < rows_; ++i) out.AppendNullaryRow();
    return out;
  }
  if (rows_ == 0) return out;
  Value* dst = out.ResizeRowsForOverwrite(rows_);
  const Value* src = payload_->data.data();
  const int arity = arity_;
  const int64_t rows = rows_;
  ForEachRowRange(pool, rows, morsel_rows, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      Value* row = dst + static_cast<size_t>(r) * arity;
      for (int c = 0; c < arity; ++c) {
        row[c] = src[static_cast<size_t>(c) * rows + r];
      }
    }
  });
  return out;
}

const Value* ColumnarRelation::column(int col) const {
  MPCQP_CHECK_GT(arity_, 0);
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, arity_);
  MPCQP_CHECK_GT(rows_, 0);
  return payload_->data.data() + static_cast<size_t>(col) * rows_;
}

Value ColumnarRelation::at(int64_t row, int col) const {
  MPCQP_CHECK_GE(row, 0);
  MPCQP_CHECK_LT(row, rows_);
  return column(col)[row];
}

std::vector<Value>& ColumnarRelation::Mutable() {
  if (!payload_) {
    payload_ = std::make_shared<Payload>();
  } else if (payload_.use_count() > 1) {
    // Same COW detach protocol as Relation::Mutable, including per-query
    // attribution of the clone.
    auto owned = std::make_shared<Payload>();
    owned->data = payload_->data;
    payload_ = std::move(owned);
    const int64_t bytes =
        static_cast<int64_t>(payload_->data.size() * sizeof(Value));
    TraceCounters::cow_detaches.fetch_add(1, std::memory_order_relaxed);
    TraceCounters::cow_detach_bytes.fetch_add(bytes,
                                              std::memory_order_relaxed);
    if (const ExecContext* context = CurrentExecContext();
        context != nullptr && context->cow_detaches != nullptr) {
      context->cow_detaches->fetch_add(1, std::memory_order_relaxed);
      context->cow_detach_bytes->fetch_add(bytes, std::memory_order_relaxed);
    }
  } else {
    // See Relation::Mutable: adopt the last sharer's detach before any
    // in-place write through the relaxed use_count() observation.
    std::shared_ptr<Payload> acquire_last_detach(payload_);
    acquire_last_detach.reset();
  }
  return payload_->data;
}

bool operator==(const ColumnarRelation& a, const ColumnarRelation& b) {
  if (a.arity_ != b.arity_ || a.rows_ != b.rows_) return false;
  if (a.payload_ == b.payload_) return true;  // Shared payload: equal.
  if (a.payload_ == nullptr || b.payload_ == nullptr) {
    return a.rows_ == 0;  // One side empty-with-no-payload.
  }
  return a.payload_->data == b.payload_->data;
}

}  // namespace mpcqp
