#ifndef MPCQP_RELATION_RELATION_VIEW_H_
#define MPCQP_RELATION_RELATION_VIEW_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "relation/relation.h"

namespace mpcqp {

// A non-owning window onto a Relation: a contiguous row span, optionally
// indirected through a selection vector of row indices. Local operators
// (join build/probe, projection, dedup, aggregation) take RelationViews so
// callers can hand them a whole fragment, a sub-range, or a filtered
// subset without materializing a Relation copy.
//
// A view borrows: the viewed Relation (and the selection vector, if any)
// must outlive it, and the Relation must not be mutated while viewed —
// the same contract a KeyIndex always had. Views are cheap value types;
// pass them by value. Binding a view to a temporary Relation inside one
// full expression is fine; storing such a view dangles.
class RelationView {
 public:
  // An empty nullary view.
  RelationView() = default;

  // Whole-relation view (implicit: operators taking views accept a
  // Relation unchanged at the call site).
  RelationView(const Relation& rel)  // NOLINT(google-explicit-constructor)
      : arity_(rel.arity()),
        rows_(rel.size()),
        base_(rel.arity() > 0 && rel.size() > 0 ? rel.row(0) : nullptr),
        rel_(&rel) {}

  // Rows [begin, end) of `rel`.
  RelationView(const Relation& rel, int64_t begin, int64_t end)
      : arity_(rel.arity()), rows_(end - begin) {
    MPCQP_CHECK_GE(begin, 0);
    MPCQP_CHECK_LE(begin, end);
    MPCQP_CHECK_LE(end, rel.size());
    if (arity_ > 0 && rows_ > 0) base_ = rel.row(begin);
    if (begin == 0 && end == rel.size()) rel_ = &rel;
  }

  // Rows rel[selection[i]] in selection order. `selection` is borrowed.
  RelationView(const Relation& rel, const std::vector<int64_t>& selection)
      : arity_(rel.arity()),
        rows_(static_cast<int64_t>(selection.size())),
        sel_(selection.data()) {
    MPCQP_CHECK_GT(arity_, 0) << "selection views need a positive arity";
    if (rows_ > 0) base_ = rel.data().data();
  }

  int arity() const { return arity_; }
  int64_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  // Pointer to the `i`-th viewed row. Invalid for nullary views.
  const Value* row(int64_t i) const {
    MPCQP_CHECK_GT(arity_, 0);
    MPCQP_CHECK_GE(i, 0);
    MPCQP_CHECK_LT(i, rows_);
    const int64_t r = sel_ != nullptr ? sel_[i] : i;
    return base_ + static_cast<size_t>(r) * arity_;
  }

  Value at(int64_t i, int col) const {
    MPCQP_CHECK_GE(col, 0);
    MPCQP_CHECK_LT(col, arity_);
    return row(i)[col];
  }

  // Raw access for the tight gather/scan kernels (relation/columnar.h):
  // base() is row 0 of the span — or the whole flat buffer when a
  // selection is set, in which case selection() holds absolute row
  // indices into it. nullptr selection means the view is contiguous.
  const Value* base() const { return base_; }
  const int64_t* selection() const { return sel_; }

  // Materializes the viewed rows. A whole-relation view returns a
  // payload-sharing handle (no bytes move, COW); spans and selections
  // copy exactly the viewed rows.
  Relation ToRelation() const {
    if (rel_ != nullptr && sel_ == nullptr) return *rel_;
    Relation out(arity_);
    if (arity_ == 0) {
      for (int64_t i = 0; i < rows_; ++i) out.AppendNullaryRow();
      return out;
    }
    out.Reserve(rows_);
    for (int64_t i = 0; i < rows_; ++i) out.AppendRow(row(i));
    return out;
  }

 private:
  int arity_ = 0;
  int64_t rows_ = 0;
  const Value* base_ = nullptr;   // Row 0 of the span / the flat buffer.
  const int64_t* sel_ = nullptr;  // Optional selection (indices into base_).
  const Relation* rel_ = nullptr;  // Set for whole-relation views only.
};

}  // namespace mpcqp

#endif  // MPCQP_RELATION_RELATION_VIEW_H_
