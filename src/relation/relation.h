#ifndef MPCQP_RELATION_RELATION_H_
#define MPCQP_RELATION_RELATION_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace mpcqp {

// Attribute values. The whole library works over 64-bit integer domains;
// the MPC theory is agnostic to the value type, and integers keep the
// simulator exact and fast.
using Value = uint64_t;

// Attribute names for a relation. Algorithms address columns positionally;
// Schema exists for API ergonomics (examples, parser, printing).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attributes);

  int arity() const { return static_cast<int>(attributes_.size()); }
  const std::string& attribute(int index) const;

  // Returns the index of `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  const std::vector<std::string>& attributes() const { return attributes_; }

 private:
  std::vector<std::string> attributes_;
};

// A relation: a multiset of fixed-arity rows stored row-major in one flat
// buffer. Copyable and movable; copies are deep.
class Relation {
 public:
  // An empty nullary relation; mostly useful as a placeholder.
  Relation() : arity_(0) {}
  explicit Relation(int arity);
  Relation(int arity, std::vector<Value> data);

  // Builds a relation from explicit rows; all rows must share one arity.
  static Relation FromRows(std::initializer_list<std::vector<Value>> rows);
  static Relation FromRows(const std::vector<std::vector<Value>>& rows);

  int arity() const { return arity_; }
  int64_t size() const {
    return arity_ == 0 ? nullary_count_
                       : static_cast<int64_t>(data_.size()) / arity_;
  }
  bool empty() const { return size() == 0; }

  // Pointer to the `row`-th row (arity() consecutive values).
  // Invalid for nullary relations.
  const Value* row(int64_t row) const;

  Value at(int64_t row, int col) const;

  void AppendRow(const Value* values);
  void AppendRow(const std::vector<Value>& values);
  void AppendRow(std::initializer_list<Value> values);
  // Appends a row of another relation with the same arity.
  void AppendRowFrom(const Relation& other, int64_t row);
  // Appends all rows of another relation with the same arity (bulk
  // concatenation; one memcpy instead of a per-row loop).
  void Append(const Relation& other);
  // Appends an empty (nullary) row; only valid when arity() == 0. A nullary
  // relation is either empty (false) or holds some count of empty tuples.
  void AppendNullaryRow();

  void Reserve(int64_t rows);
  void Clear();

  // Sorts rows lexicographically (all columns). In-place.
  void SortRows();
  // Sorts rows by the given key columns (then remaining columns for
  // determinism). In-place.
  void SortRowsBy(const std::vector<int>& key_cols);

  const std::vector<Value>& data() const { return data_; }

  // Exact equality: same arity, same rows in the same order.
  friend bool operator==(const Relation& a, const Relation& b);

  // Pretty-prints up to `max_rows` rows (for examples/debugging).
  std::string ToString(int64_t max_rows = 20) const;

 private:
  int arity_;
  int64_t nullary_count_ = 0;  // Row count when arity_ == 0.
  std::vector<Value> data_;
};

}  // namespace mpcqp

#endif  // MPCQP_RELATION_RELATION_H_
