#ifndef MPCQP_RELATION_RELATION_H_
#define MPCQP_RELATION_RELATION_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace mpcqp {

class ThreadPool;

// Attribute values. The whole library works over 64-bit integer domains;
// the MPC theory is agnostic to the value type, and integers keep the
// simulator exact and fast.
using Value = uint64_t;

// Attribute names for a relation. Algorithms address columns positionally;
// Schema exists for API ergonomics (examples, parser, printing).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attributes);

  int arity() const { return static_cast<int>(attributes_.size()); }
  const std::string& attribute(int index) const;

  // Returns the index of `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  const std::vector<std::string>& attributes() const { return attributes_; }

 private:
  std::vector<std::string> attributes_;
};

// A relation: a multiset of fixed-arity rows stored row-major in one flat
// buffer. Copyable and movable.
//
// Copies are copy-on-write: the flat buffer lives in a shared immutable
// payload, so copying a Relation (fragment handles, broadcast replicas,
// operator inputs) moves no bytes. Any mutating call detaches first —
// transparently cloning the payload if other handles still share it — so
// handles never observe each other's writes and the value semantics of a
// deep copy are preserved exactly. Reading a shared payload from several
// threads is safe; a single Relation object still must not be mutated
// concurrently with any access to the same object.
class Relation {
 public:
  // An empty nullary relation; mostly useful as a placeholder.
  Relation() : arity_(0) {}
  explicit Relation(int arity);
  Relation(int arity, std::vector<Value> data);

  // Builds a relation from explicit rows; all rows must share one arity.
  static Relation FromRows(std::initializer_list<std::vector<Value>> rows);
  static Relation FromRows(const std::vector<std::vector<Value>>& rows);

  int arity() const { return arity_; }
  int64_t size() const {
    if (arity_ == 0) return nullary_count_;
    return payload_ ? static_cast<int64_t>(payload_->data.size()) / arity_
                    : 0;
  }
  bool empty() const { return size() == 0; }

  // Pointer to the `row`-th row (arity() consecutive values).
  // Invalid for nullary relations.
  const Value* row(int64_t row) const;

  Value at(int64_t row, int col) const;

  void AppendRow(const Value* values);
  void AppendRow(const std::vector<Value>& values);
  void AppendRow(std::initializer_list<Value> values);
  // Appends a row of another relation with the same arity.
  void AppendRowFrom(const Relation& other, int64_t row);
  // Appends all rows of another relation with the same arity (bulk
  // concatenation; one memcpy instead of a per-row loop).
  void Append(const Relation& other);
  // Appends rows [begin, end) of `other` (same arity) in one memcpy.
  void AppendRange(const Relation& other, int64_t begin, int64_t end);
  // Appends an empty (nullary) row; only valid when arity() == 0. A nullary
  // relation is either empty (false) or holds some count of empty tuples.
  void AppendNullaryRow();

  void Reserve(int64_t rows);
  void Clear();

  // Sorts rows lexicographically (all columns). In-place. A non-null
  // `pool` runs the parallel sort kernel (common/parallel_sort.h); the
  // result is bit-identical for every pool size.
  void SortRows(ThreadPool* pool = nullptr);
  // Sorts rows by the given key columns (then remaining columns for
  // determinism). In-place.
  void SortRowsBy(const std::vector<int>& key_cols,
                  ThreadPool* pool = nullptr);

  const std::vector<Value>& data() const {
    return payload_ ? payload_->data : EmptyData();
  }

  // ---- Copy-on-write control (the zero-copy data plane) ----

  // Explicit detach: clones the payload if any other handle shares it and
  // returns the now-private flat buffer for in-place mutation. All other
  // mutators call this internally; exposed for callers that edit the raw
  // buffer (e.g. local sorts).
  std::vector<Value>& Mutable();

  // Detaches, discards current contents, pre-sizes to exactly `rows` rows,
  // and returns the mutable base pointer. This is the bulk-write entry of
  // the two-phase exchange: destinations are sized from exact counts, then
  // rows are memcpy'd in at precomputed offsets. Invalid for arity 0.
  Value* ResizeRowsForOverwrite(int64_t rows);

  // True if this handle shares its payload with `other` (no bytes would be
  // saved by copying one into the other). Diagnostic/test hook.
  bool SharesPayloadWith(const Relation& other) const {
    return payload_ != nullptr && payload_ == other.payload_;
  }

  // Exact equality: same arity, same rows in the same order.
  friend bool operator==(const Relation& a, const Relation& b);

  // Pretty-prints up to `max_rows` rows (for examples/debugging).
  std::string ToString(int64_t max_rows = 20) const;

 private:
  // The shared immutable flat buffer. Handles share it on copy; Mutable()
  // detaches before any write.
  struct Payload {
    std::vector<Value> data;
  };

  static const std::vector<Value>& EmptyData();

  int arity_;
  int64_t nullary_count_ = 0;  // Row count when arity_ == 0.
  std::shared_ptr<Payload> payload_;
};

}  // namespace mpcqp

#endif  // MPCQP_RELATION_RELATION_H_
