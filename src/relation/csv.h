#ifndef MPCQP_RELATION_CSV_H_
#define MPCQP_RELATION_CSV_H_

#include <string>

#include "common/statusor.h"
#include "relation/relation.h"

namespace mpcqp {

// Minimal CSV support for unsigned-integer relations: one row per line,
// comma-separated decimal values, no header, no quoting. Empty lines are
// skipped. All rows must share one arity.

// Parses CSV text. `expected_arity` >= 0 enforces the arity; -1 infers it
// from the first row; anything below -1 is an InvalidArgument error.
// Fields that do not fit in a 64-bit Value are an error (named by line
// number), never a silent wrap.
StatusOr<Relation> ParseCsvText(const std::string& text,
                                int expected_arity = -1);

// Serializes a relation to CSV text.
std::string ToCsvText(const Relation& rel);

// File variants.
StatusOr<Relation> ReadCsvFile(const std::string& path,
                               int expected_arity = -1);
Status WriteCsvFile(const Relation& rel, const std::string& path);

}  // namespace mpcqp

#endif  // MPCQP_RELATION_CSV_H_
