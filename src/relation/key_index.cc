#include "relation/key_index.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "relation/columnar.h"

namespace mpcqp {

namespace {

// A fixed seed: the index is an in-memory structure, not a partitioning
// decision, so it does not need to vary across runs.
constexpr uint64_t kIndexSeed = 0x1d8af066u;

// Inputs below this row count build serially in one partition; the
// partitioned two-phase build only pays for itself on large fragments.
constexpr int64_t kPartitionMinRows = int64_t{1} << 13;
// Directory partitions (top hash bits) for large builds; independent of
// the thread count so the index layout is identical for every pool size.
constexpr int kLargeBuildPartitionBits = 6;
// Target rows per counting/scatter morsel.
constexpr int64_t kMorselRows = 8192;

int64_t NextPow2(int64_t v) {
  int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// The index's (seeded, fixed) hash function; shared by the per-key and
// batched paths so both produce identical hashes.
const HashFunction& IndexHash() {
  static const HashFunction kHash(kIndexSeed);
  return kHash;
}

}  // namespace

KeyIndex::KeyIndex(RelationView view, std::vector<int> key_cols,
                   ThreadPool* pool)
    : view_(view), key_cols_(std::move(key_cols)) {
  Build(pool);
}

KeyIndex::KeyIndex(RelationView view, std::vector<int> key_cols,
                   KeyHashFn test_hash, ThreadPool* pool)
    : view_(view),
      key_cols_(std::move(key_cols)),
      test_hash_(std::move(test_hash)) {
  Build(pool);
}

void KeyIndex::Build(ThreadPool* pool) {
  for (int c : key_cols_) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, view_.arity());
  }
  const int64_t n = view_.size();
  MPCQP_TRACE_SCOPE_ARG("key_index build", "compute", n);

  part_bits_ = n < kPartitionMinRows ? 0 : kLargeBuildPartitionBits;
  const int64_t num_parts = int64_t{1} << part_bits_;
  const int64_t morsels =
      (pool == nullptr || pool->num_threads() <= 1 || n < kPartitionMinRows)
          ? 1
          : std::min<int64_t>(static_cast<int64_t>(pool->num_threads()) * 4,
                              std::max<int64_t>(1, (n + kMorselRows - 1) /
                                                       kMorselRows));

  // Phase 1 (morsel-parallel): hash every row's key and count rows per
  // (morsel, partition).
  std::vector<uint64_t> hashes(static_cast<size_t>(n));
  std::vector<int64_t> counts(static_cast<size_t>(morsels * num_parts), 0);
  const auto morsel_range = [&](int64_t m) {
    return std::pair<int64_t, int64_t>{m * n / morsels,
                                       (m + 1) * n / morsels};
  };
  const auto part_of = [&](uint64_t h) {
    return part_bits_ == 0 ? int64_t{0}
                           : static_cast<int64_t>(h >> (64 - part_bits_));
  };
  // Single-column keys without a test hash take the columnar build path:
  // gather the key column into a contiguous scratch (the shared
  // GatherKeyColumn kernel) and hash it with one vectorized HashMany pass
  // — bit-identical to the per-row HashSpan by the splitmix identity.
  const bool single_col_hash = key_cols_.size() == 1 && !test_hash_;
  const auto count_morsel = [&](int64_t m) {
    const auto [begin, end] = morsel_range(m);
    int64_t* my_counts = counts.data() + m * num_parts;
    if (single_col_hash) {
      std::vector<Value> keys(static_cast<size_t>(end - begin));
      GatherKeyColumn(view_, key_cols_[0], begin, end, keys.data());
      IndexHash().HashMany(keys.data(), end - begin, hashes.data() + begin);
      if (part_bits_ == 0) {
        my_counts[0] += end - begin;
      } else {
        simd::HistogramTopBits(hashes.data() + begin, end - begin, part_bits_,
                               my_counts);
      }
      return;
    }
    std::vector<Value> key(key_cols_.size());
    for (int64_t r = begin; r < end; ++r) {
      const Value* row = view_.row(r);
      for (size_t i = 0; i < key_cols_.size(); ++i) {
        key[i] = row[key_cols_[i]];
      }
      const uint64_t h = HashKey(key.data());
      hashes[r] = h;
      ++my_counts[part_of(h)];
    }
  };
  if (morsels == 1) {
    if (n > 0) count_morsel(0);
  } else {
    pool->ParallelFor(morsels, count_morsel);
  }

  // Prefix sum (partition-major, then morsel order within a partition):
  // every (morsel, partition) cell gets its exact scatter offset, so the
  // partitioned arrays stay in ascending row order for any morsel count.
  std::vector<int64_t> part_begin(static_cast<size_t>(num_parts) + 1, 0);
  std::vector<int64_t> offsets(static_cast<size_t>(morsels * num_parts), 0);
  int64_t pos = 0;
  for (int64_t part = 0; part < num_parts; ++part) {
    part_begin[part] = pos;
    for (int64_t m = 0; m < morsels; ++m) {
      offsets[m * num_parts + part] = pos;
      pos += counts[m * num_parts + part];
    }
  }
  part_begin[num_parts] = n;

  // Phase 2 (morsel-parallel): scatter (row, hash) into partition-major
  // order.
  std::vector<int64_t> part_rows(static_cast<size_t>(n));
  std::vector<uint64_t> part_hashes(static_cast<size_t>(n));
  const auto scatter_morsel = [&](int64_t m) {
    const auto [begin, end] = morsel_range(m);
    int64_t* my_offsets = offsets.data() + m * num_parts;
    for (int64_t r = begin; r < end; ++r) {
      const uint64_t h = hashes[r];
      const int64_t at = my_offsets[part_of(h)]++;
      part_rows[at] = r;
      part_hashes[at] = h;
    }
  };
  if (morsels == 1) {
    if (n > 0) scatter_morsel(0);
  } else {
    pool->ParallelFor(morsels, scatter_morsel);
  }

  // Directory layout: one power-of-two linear-probe slice per partition at
  // load factor <= 0.5 (so probes always hit an empty slot and terminate).
  dir_begin_.assign(static_cast<size_t>(num_parts) + 1, 0);
  dir_mask_.assign(static_cast<size_t>(num_parts), 0);
  int64_t dir_size = 0;
  for (int64_t part = 0; part < num_parts; ++part) {
    const int64_t rows = part_begin[part + 1] - part_begin[part];
    const int64_t cap = NextPow2(std::max<int64_t>(2, 2 * rows));
    dir_begin_[part] = dir_size;
    dir_mask_[part] = static_cast<uint64_t>(cap - 1);
    dir_size += cap;
  }
  dir_begin_[num_parts] = dir_size;
  dir_.assign(static_cast<size_t>(dir_size), Slot{});
  arena_.resize(static_cast<size_t>(n));

  // Phase 3 (partition-parallel): group each partition's rows by exact
  // key. Rows arrive in ascending row order, so groups form in
  // first-occurrence order and each group's arena range is ascending —
  // the layout is identical for every thread count.
  std::vector<int64_t> distinct(static_cast<size_t>(num_parts), 0);
  const auto build_partition = [&](int64_t part) {
    const int64_t base = part_begin[part];
    const int64_t rows = part_begin[part + 1] - base;
    if (rows == 0) return;
    const int64_t dbase = dir_begin_[part];
    const uint64_t mask = dir_mask_[part];
    // Local groups in first-occurrence order; slots hold the local group
    // id in `offset` until the counts are final.
    struct LocalGroup {
      int64_t rep_row;
      int64_t count;
      int64_t slot;
    };
    std::vector<LocalGroup> groups;
    std::vector<int64_t> gid(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) {
      const int64_t r = part_rows[base + i];
      const uint64_t h = part_hashes[base + i];
      uint64_t idx = h & mask;
      while (true) {
        Slot& s = dir_[dbase + static_cast<int64_t>(idx)];
        if (s.len == 0) {
          s.hash = h;
          s.offset = static_cast<int64_t>(groups.size());
          s.len = 1;  // Occupied; rewritten with the true length below.
          gid[i] = static_cast<int64_t>(groups.size());
          groups.push_back({r, 1, dbase + static_cast<int64_t>(idx)});
          break;
        }
        if (s.hash == h) {
          // Hash match: confirm exact key equality against the group's
          // representative row (distinct keys can share a 64-bit hash).
          const Value* rep = view_.row(groups[s.offset].rep_row);
          const Value* row = view_.row(r);
          bool same = true;
          for (int c : key_cols_) {
            if (rep[c] != row[c]) {
              same = false;
              break;
            }
          }
          if (same) {
            ++groups[s.offset].count;
            gid[i] = s.offset;
            break;
          }
        }
        idx = (idx + 1) & mask;
      }
    }
    // Local prefix sum -> arena offsets, then scatter rows in order.
    std::vector<int64_t> cursor(groups.size());
    int64_t at = base;
    for (size_t g = 0; g < groups.size(); ++g) {
      Slot& s = dir_[groups[g].slot];
      s.offset = at;
      s.len = groups[g].count;
      cursor[g] = at;
      at += groups[g].count;
    }
    for (int64_t i = 0; i < rows; ++i) {
      arena_[cursor[gid[i]]++] = part_rows[base + i];
    }
    distinct[part] = static_cast<int64_t>(groups.size());
  };
  if (num_parts == 1 || pool == nullptr || pool->num_threads() <= 1) {
    for (int64_t part = 0; part < num_parts; ++part) build_partition(part);
  } else {
    pool->ParallelFor(num_parts, build_partition);
  }
  for (int64_t part = 0; part < num_parts; ++part) {
    num_distinct_keys_ += distinct[part];
  }
}

uint64_t KeyIndex::HashKey(const Value* key) const {
  if (test_hash_) {
    return test_hash_(key, static_cast<int>(key_cols_.size()));
  }
  return IndexHash().HashSpan(key, static_cast<int>(key_cols_.size()));
}

void KeyIndex::HashKeys(const Value* keys, int64_t count,
                        uint64_t* out) const {
  if (!test_hash_ && key_cols_.size() == 1) {
    IndexHash().HashMany(keys, count, out);
    return;
  }
  const int width = static_cast<int>(key_cols_.size());
  for (int64_t i = 0; i < count; ++i) {
    out[i] = HashKey(keys + static_cast<size_t>(i) * width);
  }
}

bool KeyIndex::RowMatchesKey(int64_t row, const Value* key) const {
  const Value* r = view_.row(row);
  for (size_t i = 0; i < key_cols_.size(); ++i) {
    if (r[key_cols_[i]] != key[i]) return false;
  }
  return true;
}

std::span<const int64_t> KeyIndex::Lookup(const Value* key) const {
  return LookupWithHash(HashKey(key), key);
}

std::span<const int64_t> KeyIndex::LookupWithHash(uint64_t h,
                                                  const Value* key) const {
  const int64_t part =
      part_bits_ == 0 ? 0 : static_cast<int64_t>(h >> (64 - part_bits_));
  const int64_t dbase = dir_begin_[part];
  const uint64_t mask = dir_mask_[part];
  for (uint64_t idx = h & mask;; idx = (idx + 1) & mask) {
    const Slot& s = dir_[dbase + static_cast<int64_t>(idx)];
    if (s.len == 0) return {};
    if (s.hash == h && RowMatchesKey(arena_[s.offset], key)) {
      return {arena_.data() + s.offset, static_cast<size_t>(s.len)};
    }
  }
}

}  // namespace mpcqp
