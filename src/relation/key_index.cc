#include "relation/key_index.h"

#include "common/check.h"
#include "common/hash.h"

namespace mpcqp {

namespace {
// A fixed seed: the index is an in-memory structure, not a partitioning
// decision, so it does not need to vary across runs.
constexpr uint64_t kIndexSeed = 0x1d8af066u;
}  // namespace

KeyIndex::KeyIndex(RelationView view, std::vector<int> key_cols)
    : view_(view), key_cols_(std::move(key_cols)) {
  for (int c : key_cols_) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, view_.arity());
  }
  std::vector<Value> key(key_cols_.size());
  for (int64_t r = 0; r < view_.size(); ++r) {
    const Value* row = view_.row(r);
    for (size_t i = 0; i < key_cols_.size(); ++i) key[i] = row[key_cols_[i]];
    const uint64_t h = HashKey(key.data());
    std::vector<std::vector<int64_t>>& groups = buckets_[h];
    bool placed = false;
    for (std::vector<int64_t>& group : groups) {
      // Compare against the group's representative row by key columns.
      const Value* rep = view_.row(group.front());
      bool same = true;
      for (int c : key_cols_) {
        if (rep[c] != row[c]) {
          same = false;
          break;
        }
      }
      if (same) {
        group.push_back(r);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({r});
  }
}

uint64_t KeyIndex::HashKey(const Value* key) const {
  static const HashFunction kHash(kIndexSeed);
  return kHash.HashSpan(key, static_cast<int>(key_cols_.size()));
}

bool KeyIndex::RowMatchesKey(int64_t row, const Value* key) const {
  const Value* r = view_.row(row);
  for (size_t i = 0; i < key_cols_.size(); ++i) {
    if (r[key_cols_[i]] != key[i]) return false;
  }
  return true;
}

const std::vector<int64_t>& KeyIndex::Lookup(const Value* key) const {
  const auto it = buckets_.find(HashKey(key));
  if (it == buckets_.end()) return empty_;
  for (const std::vector<int64_t>& group : it->second) {
    if (RowMatchesKey(group.front(), key)) return group;
  }
  return empty_;
}

}  // namespace mpcqp
