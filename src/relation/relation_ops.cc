#include "relation/relation_ops.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/check.h"
#include "common/flat_counter.h"
#include "common/parallel_sort.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "relation/key_index.h"

namespace mpcqp {

namespace {

// Shared output-building for the join family: left row then non-key right
// columns.
std::vector<int> NonKeyRightCols(RelationView right,
                                 const std::vector<int>& right_keys) {
  std::vector<int> cols;
  for (int c = 0; c < right.arity(); ++c) {
    if (std::find(right_keys.begin(), right_keys.end(), c) ==
        right_keys.end()) {
      cols.push_back(c);
    }
  }
  return cols;
}

void CheckJoinArgs(RelationView left, RelationView right,
                   const std::vector<int>& left_keys,
                   const std::vector<int>& right_keys) {
  MPCQP_CHECK_EQ(left_keys.size(), right_keys.size());
  for (int c : left_keys) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, left.arity());
  }
  for (int c : right_keys) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, right.arity());
  }
}

void EmitJoinRow(RelationView left, int64_t lrow, RelationView right,
                 int64_t rrow, const std::vector<int>& right_out_cols,
                 std::vector<Value>& scratch, Relation& out) {
  scratch.clear();
  const Value* l = left.row(lrow);
  scratch.insert(scratch.end(), l, l + left.arity());
  const Value* r = right.row(rrow);
  for (int c : right_out_cols) scratch.push_back(r[c]);
  out.AppendRow(scratch.data());
}

// Row indices of `rel` sorted by `key_cols` then all columns — the
// comparator Relation::SortRowsBy uses, applied to a permutation instead
// of a materialized copy. Exact duplicates tie, which is harmless: they
// are byte-identical.
std::vector<int64_t> SortedOrder(RelationView rel,
                                 const std::vector<int>& key_cols,
                                 ThreadPool* pool = nullptr) {
  std::vector<int64_t> order(rel.size());
  std::iota(order.begin(), order.end(), 0);
  const int arity = rel.arity();
  ParallelSort(pool, order, [&](int64_t a, int64_t b) {
    const Value* ra = rel.row(a);
    const Value* rb = rel.row(b);
    for (int c : key_cols) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    for (int c = 0; c < arity; ++c) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    return false;
  });
  return order;
}

}  // namespace

Relation Project(RelationView rel, const std::vector<int>& cols) {
  for (int c : cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, rel.arity());
  }
  Relation out(static_cast<int>(cols.size()));
  if (cols.empty()) {
    for (int64_t i = 0; i < rel.size(); ++i) out.AppendNullaryRow();
    return out;
  }
  out.Reserve(rel.size());
  std::vector<Value> scratch(cols.size());
  for (int64_t i = 0; i < rel.size(); ++i) {
    const Value* row = rel.row(i);
    for (size_t j = 0; j < cols.size(); ++j) scratch[j] = row[cols[j]];
    out.AppendRow(scratch.data());
  }
  return out;
}

Relation Dedup(RelationView rel, ThreadPool* pool) {
  if (rel.arity() == 0) {
    Relation out(0);
    if (rel.size() > 0) out.AppendNullaryRow();
    return out;
  }
  const std::vector<int64_t> order = SortedOrder(rel, {}, pool);
  Relation out(rel.arity());
  out.Reserve(rel.size());
  const Value* prev = nullptr;
  for (int64_t i : order) {
    const Value* cur = rel.row(i);
    if (prev != nullptr && std::equal(cur, cur + rel.arity(), prev)) continue;
    out.AppendRow(cur);
    prev = cur;
  }
  return out;
}

Relation Filter(RelationView rel,
                const std::function<bool(const Value*)>& pred) {
  MPCQP_CHECK_GT(rel.arity(), 0);
  Relation out(rel.arity());
  for (int64_t i = 0; i < rel.size(); ++i) {
    const Value* row = rel.row(i);
    if (pred(row)) out.AppendRow(row);
  }
  return out;
}

namespace {

// Shared two-pass driver for the SelectRange overloads: `count` returns
// the number of matches in a row range, `fill` writes their (ascending)
// row indices at a given cursor, never more than `capacity` of them (the
// exact match count from the counting pass — the SIMD fill kernel needs
// it because its compressed stores are full-width, and morsel output
// regions are adjacent and filled concurrently). Morsels cover disjoint
// ranges and land at exact prefix-summed offsets, so the output is the
// ascending match list for every (pool, morsel_rows).
std::vector<int64_t> SelectByRange(
    int64_t rows, ThreadPool* pool, int64_t morsel_rows,
    const std::function<int64_t(int64_t, int64_t)>& count,
    const std::function<void(int64_t, int64_t, int64_t*, int64_t)>& fill) {
  const bool parallel =
      pool != nullptr && morsel_rows > 0 && rows > morsel_rows;
  if (!parallel) {
    const int64_t total = count(0, rows);
    std::vector<int64_t> out(static_cast<size_t>(total));
    fill(0, rows, out.data(), total);
    return out;
  }
  const int64_t morsels = (rows + morsel_rows - 1) / morsel_rows;
  std::vector<int64_t> counts(static_cast<size_t>(morsels), 0);
  pool->ParallelForGrained(rows, morsel_rows,
                           [&](int64_t begin, int64_t end) {
                             counts[begin / morsel_rows] = count(begin, end);
                           });
  std::vector<int64_t> offsets(static_cast<size_t>(morsels) + 1, 0);
  for (int64_t m = 0; m < morsels; ++m) {
    offsets[m + 1] = offsets[m] + counts[m];
  }
  std::vector<int64_t> out(static_cast<size_t>(offsets[morsels]));
  pool->ParallelForGrained(
      rows, morsel_rows, [&](int64_t begin, int64_t end) {
        const int64_t m = begin / morsel_rows;
        fill(begin, end, out.data() + offsets[m], counts[m]);
      });
  return out;
}

}  // namespace

std::vector<int64_t> SelectRange(RelationView rel, int col, Value lo,
                                 Value hi, ThreadPool* pool,
                                 int64_t morsel_rows, LayoutMode layout) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  MPCQP_TRACE_SCOPE_ARG("select range", "compute", rel.size());
  if (UseColumnarScan(layout, rel.arity(), 1) || rel.selection() != nullptr) {
    // Compact the column out of the wide rows (the shared gather kernel),
    // then run the unit-stride SIMD predicate. Selection views always take
    // this path: their rows are not contiguous to begin with.
    const auto count = [&](int64_t begin, int64_t end) {
      std::vector<Value> keys(static_cast<size_t>(end - begin));
      GatherKeyColumn(rel, col, begin, end, keys.data());
      return simd::CountInRange(keys.data(), end - begin, lo, hi);
    };
    const auto fill = [&](int64_t begin, int64_t end, int64_t* out,
                          int64_t capacity) {
      std::vector<Value> keys(static_cast<size_t>(end - begin));
      GatherKeyColumn(rel, col, begin, end, keys.data());
      simd::FillInRange(keys.data(), end - begin, begin, lo, hi, out,
                        capacity);
    };
    return SelectByRange(rel.size(), pool, morsel_rows, count, fill);
  }
  const Value* base = rel.base();
  const int arity = rel.arity();
  const auto count = [&](int64_t begin, int64_t end) {
    int64_t hits = 0;
    const Value* p = base + static_cast<size_t>(begin) * arity + col;
    for (int64_t r = begin; r < end; ++r, p += arity) {
      hits += *p >= lo && *p <= hi;
    }
    return hits;
  };
  const auto fill = [&](int64_t begin, int64_t end, int64_t* out,
                        int64_t capacity) {
    (void)capacity;
    const Value* p = base + static_cast<size_t>(begin) * arity + col;
    for (int64_t r = begin; r < end; ++r, p += arity) {
      if (*p >= lo && *p <= hi) *out++ = r;
    }
  };
  return SelectByRange(rel.size(), pool, morsel_rows, count, fill);
}

std::vector<int64_t> SelectRange(const ColumnarRelation& rel, int col,
                                 Value lo, Value hi, ThreadPool* pool,
                                 int64_t morsel_rows) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  MPCQP_TRACE_SCOPE_ARG("select range columnar", "compute", rel.size());
  if (rel.empty()) return {};
  const Value* column = rel.column(col);
  const auto count = [&](int64_t begin, int64_t end) {
    return simd::CountInRange(column + begin, end - begin, lo, hi);
  };
  const auto fill = [&](int64_t begin, int64_t end, int64_t* out,
                        int64_t capacity) {
    simd::FillInRange(column + begin, end - begin, begin, lo, hi, out,
                      capacity);
  };
  return SelectByRange(rel.size(), pool, morsel_rows, count, fill);
}

Relation UnionAll(RelationView a, RelationView b) {
  MPCQP_CHECK_EQ(a.arity(), b.arity());
  Relation out = a.ToRelation();
  if (a.arity() == 0) {
    for (int64_t i = 0; i < b.size(); ++i) out.AppendNullaryRow();
    return out;
  }
  out.Reserve(a.size() + b.size());
  for (int64_t i = 0; i < b.size(); ++i) out.AppendRow(b.row(i));
  return out;
}

Relation HashJoinLocal(RelationView left, RelationView right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys) {
  CheckJoinArgs(left, right, left_keys, right_keys);
  const std::vector<int> right_out_cols = NonKeyRightCols(right, right_keys);
  Relation out(left.arity() + static_cast<int>(right_out_cols.size()));
  if (left.empty() || right.empty()) return out;

  // Build on the smaller side conceptually; for simplicity always build on
  // `right` (callers pass the smaller side right in hot paths).
  KeyIndex index(right, right_keys);
  MPCQP_TRACE_SCOPE_ARG("key_index probe", "compute", left.size());
  std::vector<Value> key(left_keys.size());
  std::vector<Value> scratch;
  for (int64_t i = 0; i < left.size(); ++i) {
    const Value* lrow = left.row(i);
    for (size_t k = 0; k < left_keys.size(); ++k) key[k] = lrow[left_keys[k]];
    for (int64_t rrow : index.Lookup(key.data())) {
      EmitJoinRow(left, i, right, rrow, right_out_cols, scratch, out);
    }
  }
  return out;
}

Relation SortMergeJoinLocal(RelationView left, RelationView right,
                            const std::vector<int>& left_keys,
                            const std::vector<int>& right_keys) {
  CheckJoinArgs(left, right, left_keys, right_keys);
  const std::vector<int> right_out_cols = NonKeyRightCols(right, right_keys);
  Relation out(left.arity() + static_cast<int>(right_out_cols.size()));
  if (left.empty() || right.empty()) return out;

  // Sorted selection views: the merge walks permutations, not copies.
  const std::vector<int64_t> lorder = SortedOrder(left, left_keys);
  const std::vector<int64_t> rorder = SortedOrder(right, right_keys);

  auto compare_keys = [&](int64_t li, int64_t ri) {
    const Value* l = left.row(lorder[li]);
    const Value* r = right.row(rorder[ri]);
    for (size_t k = 0; k < left_keys.size(); ++k) {
      const Value lv = l[left_keys[k]];
      const Value rv = r[right_keys[k]];
      if (lv != rv) return lv < rv ? -1 : 1;
    }
    return 0;
  };
  auto same_left_key = [&](int64_t a, int64_t b) {
    const Value* ra = left.row(lorder[a]);
    const Value* rb = left.row(lorder[b]);
    for (int k : left_keys) {
      if (ra[k] != rb[k]) return false;
    }
    return true;
  };
  auto same_right_key = [&](int64_t a, int64_t b) {
    const Value* ra = right.row(rorder[a]);
    const Value* rb = right.row(rorder[b]);
    for (int k : right_keys) {
      if (ra[k] != rb[k]) return false;
    }
    return true;
  };

  std::vector<Value> scratch;
  int64_t li = 0;
  int64_t ri = 0;
  while (li < static_cast<int64_t>(lorder.size()) &&
         ri < static_cast<int64_t>(rorder.size())) {
    const int cmp = compare_keys(li, ri);
    if (cmp < 0) {
      ++li;
    } else if (cmp > 0) {
      ++ri;
    } else {
      // Find the run of equal keys on each side, emit the cross product.
      int64_t lend = li + 1;
      while (lend < static_cast<int64_t>(lorder.size()) &&
             same_left_key(lend, li)) {
        ++lend;
      }
      int64_t rend = ri + 1;
      while (rend < static_cast<int64_t>(rorder.size()) &&
             same_right_key(rend, ri)) {
        ++rend;
      }
      for (int64_t a = li; a < lend; ++a) {
        for (int64_t b = ri; b < rend; ++b) {
          EmitJoinRow(left, lorder[a], right, rorder[b], right_out_cols,
                      scratch, out);
        }
      }
      li = lend;
      ri = rend;
    }
  }
  return out;
}

Relation NestedLoopJoinLocal(RelationView left, RelationView right,
                             const std::vector<int>& left_keys,
                             const std::vector<int>& right_keys) {
  CheckJoinArgs(left, right, left_keys, right_keys);
  const std::vector<int> right_out_cols = NonKeyRightCols(right, right_keys);
  Relation out(left.arity() + static_cast<int>(right_out_cols.size()));
  std::vector<Value> scratch;
  for (int64_t i = 0; i < left.size(); ++i) {
    for (int64_t j = 0; j < right.size(); ++j) {
      bool match = true;
      for (size_t k = 0; k < left_keys.size(); ++k) {
        if (left.at(i, left_keys[k]) != right.at(j, right_keys[k])) {
          match = false;
          break;
        }
      }
      if (match) EmitJoinRow(left, i, right, j, right_out_cols, scratch, out);
    }
  }
  return out;
}

namespace {

// Shared probe loop of the (anti)semijoin pair: appends every left row
// whose membership in the index equals `want_match`, in ascending row
// order. Single-column keys run the columnar probe: per block, gather the
// key column (shared kernel), hash it in one vectorized HashKeys pass,
// then walk the directory per key — identical hits and output order to
// the per-row path, only the memory access pattern differs.
Relation FilterByIndex(RelationView left, const std::vector<int>& left_keys,
                       const KeyIndex& index, bool want_match) {
  Relation out(left.arity());
  MPCQP_TRACE_SCOPE_ARG("key_index probe", "compute", left.size());
  if (left_keys.size() == 1) {
    constexpr int64_t kBlockRows = 8192;
    std::vector<Value> keys(static_cast<size_t>(
        std::min<int64_t>(kBlockRows, left.size())));
    std::vector<uint64_t> hashes(keys.size());
    for (int64_t begin = 0; begin < left.size(); begin += kBlockRows) {
      const int64_t end = std::min<int64_t>(begin + kBlockRows, left.size());
      GatherKeyColumn(left, left_keys[0], begin, end, keys.data());
      index.HashKeys(keys.data(), end - begin, hashes.data());
      for (int64_t i = begin; i < end; ++i) {
        const bool hit =
            !index.LookupWithHash(hashes[i - begin], &keys[i - begin])
                 .empty();
        if (hit == want_match) out.AppendRow(left.row(i));
      }
    }
    return out;
  }
  std::vector<Value> key(left_keys.size());
  for (int64_t i = 0; i < left.size(); ++i) {
    const Value* lrow = left.row(i);
    for (size_t k = 0; k < left_keys.size(); ++k) key[k] = lrow[left_keys[k]];
    if (index.Contains(key.data()) == want_match) out.AppendRow(lrow);
  }
  return out;
}

}  // namespace

Relation SemijoinLocal(RelationView left, RelationView right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys) {
  CheckJoinArgs(left, right, left_keys, right_keys);
  if (left.empty() || right.empty()) return Relation(left.arity());
  KeyIndex index(right, right_keys);
  return FilterByIndex(left, left_keys, index, /*want_match=*/true);
}

Relation AntijoinLocal(RelationView left, RelationView right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys) {
  CheckJoinArgs(left, right, left_keys, right_keys);
  if (left.empty()) return Relation(left.arity());
  if (right.empty()) return left.ToRelation();
  KeyIndex index(right, right_keys);
  return FilterByIndex(left, left_keys, index, /*want_match=*/false);
}

StatusOr<Relation> GroupBySum(RelationView rel,
                              const std::vector<int>& group_cols,
                              int value_col) {
  return GroupByAggregate(rel, group_cols, value_col, AggregateOp::kSum);
}

StatusOr<Relation> GroupByAggregate(RelationView rel,
                                    const std::vector<int>& group_cols,
                                    int value_col, AggregateOp op) {
  // kCount never reads the value column; value_col = -1 lets callers count
  // over relations that carry no value column at all (e.g. a shuffle that
  // shipped only the group columns).
  MPCQP_CHECK(value_col >= 0 || op == AggregateOp::kCount);
  if (value_col >= 0) MPCQP_CHECK_LT(value_col, rel.arity());
  for (int c : group_cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, rel.arity());
  }
  // std::map keeps output deterministic (sorted by group key). With empty
  // group_cols the map holds at most one entry: the scalar group.
  std::map<std::vector<Value>, Value> accumulators;
  std::vector<Value> key(group_cols.size());
  for (int64_t i = 0; i < rel.size(); ++i) {
    const Value* row = rel.row(i);
    for (size_t k = 0; k < group_cols.size(); ++k) key[k] = row[group_cols[k]];
    const Value value = value_col >= 0 ? row[value_col] : 0;
    auto [it, inserted] = accumulators.try_emplace(key, 0);
    switch (op) {
      case AggregateOp::kSum:
        if (it->second + value < it->second) {
          return OutOfRangeError("group-by SUM overflows Value");
        }
        it->second += value;
        break;
      case AggregateOp::kCount:
        if (it->second + 1 == 0) {
          return OutOfRangeError("group-by COUNT overflows Value");
        }
        it->second += 1;
        break;
      case AggregateOp::kMin:
        if (inserted || value < it->second) it->second = value;
        break;
      case AggregateOp::kMax:
        if (inserted || value > it->second) it->second = value;
        break;
    }
  }
  Relation out(static_cast<int>(group_cols.size()) + 1);
  std::vector<Value> scratch;
  for (const auto& [group, aggregate] : accumulators) {
    scratch = group;
    scratch.push_back(aggregate);
    out.AppendRow(scratch.data());
  }
  return out;
}

bool MultisetEqual(RelationView a, RelationView b, ThreadPool* pool) {
  if (a.arity() != b.arity() || a.size() != b.size()) return false;
  if (a.arity() == 0) return true;  // Equal nullary counts.
  // Compare through sorted permutations; neither input is copied.
  const std::vector<int64_t> ao = SortedOrder(a, {}, pool);
  const std::vector<int64_t> bo = SortedOrder(b, {}, pool);
  for (int64_t i = 0; i < a.size(); ++i) {
    const Value* ra = a.row(ao[i]);
    const Value* rb = b.row(bo[i]);
    if (!std::equal(ra, ra + a.arity(), rb)) return false;
  }
  return true;
}

Relation DegreeCount(RelationView rel, int col) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  FlatCounter counts;
  for (int64_t i = 0; i < rel.size(); ++i) counts.Add(rel.at(i, col));
  Relation out(2);
  for (const auto& [value, count] : counts.SortedEntries()) {
    out.AppendRow({value, static_cast<Value>(count)});
  }
  return out;
}

}  // namespace mpcqp
