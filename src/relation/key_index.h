#ifndef MPCQP_RELATION_KEY_INDEX_H_
#define MPCQP_RELATION_KEY_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relation/relation.h"
#include "relation/relation_view.h"

namespace mpcqp {

// A hash index over a relation view keyed by a subset of its columns.
// Probes verify exact key equality (the 64-bit row hash only buckets).
//
// The index borrows the viewed rows; the underlying Relation (and the
// selection vector, for selection views) must outlive the index and must
// not be modified while indexed. Indexing a view costs nothing extra over
// indexing a materialized copy — this is how the build sides of the local
// join family avoid materializing their inputs.
class KeyIndex {
 public:
  KeyIndex(RelationView view, std::vector<int> key_cols);

  // Row indices (into the view) whose key columns equal `key`
  // (key_cols.size() values). The returned reference is invalidated by the
  // next Lookup call only if probing missed; treat it as a transient view.
  const std::vector<int64_t>& Lookup(const Value* key) const;

  // True if some row matches `key`.
  bool Contains(const Value* key) const { return !Lookup(key).empty(); }

  int key_arity() const { return static_cast<int>(key_cols_.size()); }
  const RelationView& view() const { return view_; }
  const std::vector<int>& key_cols() const { return key_cols_; }

  // Number of distinct key values present.
  int64_t num_distinct_keys() const {
    return static_cast<int64_t>(buckets_.size());
  }

 private:
  uint64_t HashKey(const Value* key) const;
  bool RowMatchesKey(int64_t row, const Value* key) const;

  RelationView view_;
  std::vector<int> key_cols_;
  // Bucket hash -> list of (first-row, rows...) groups. To handle 64-bit
  // hash collisions between distinct keys, each bucket stores groups of
  // rows by exact key; see implementation.
  std::unordered_map<uint64_t, std::vector<std::vector<int64_t>>> buckets_;
  std::vector<int64_t> empty_;
};

}  // namespace mpcqp

#endif  // MPCQP_RELATION_KEY_INDEX_H_
