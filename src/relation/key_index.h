#ifndef MPCQP_RELATION_KEY_INDEX_H_
#define MPCQP_RELATION_KEY_INDEX_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "relation/relation.h"
#include "relation/relation_view.h"

namespace mpcqp {

class ThreadPool;

// A hash index over a relation view keyed by a subset of its columns.
// Probes verify exact key equality (the 64-bit row hash only buckets).
//
// Storage is a flat open-addressing table over one contiguous arena: a
// count -> prefix-sum -> scatter build pass (the two-phase shape of the
// exchange router) groups the view's row indices by key in a single
// int64 arena, and a linear-probe directory of (hash, offset, len) slots
// maps each key to its arena range. Lookup returns a span into the arena,
// so probe results are never invalidated by later probes — the miss-
// invalidated-reference footgun of the old nested-map index is gone by
// construction. There are no per-key heap nodes to chase: a probe costs
// one hashed directory walk plus one contiguous arena read.
//
// Passing a ThreadPool morsel-parallelizes the build (per-worker partition
// counts merged by prefix sum, then independent per-partition grouping),
// and the resulting index is bit-identical for every thread count: row
// indices within a group are always ascending and groups within a
// partition always appear in first-occurrence order.
//
// The index borrows the viewed rows; the underlying Relation (and the
// selection vector, for selection views) must outlive the index and must
// not be modified while indexed. Indexing a view costs nothing extra over
// indexing a materialized copy — this is how the build sides of the local
// join family avoid materializing their inputs.
class KeyIndex {
 public:
  // Builds the index; `pool` (optional) parallelizes the build passes.
  KeyIndex(RelationView view, std::vector<int> key_cols,
           ThreadPool* pool = nullptr);

  // Test-only: overrides the 64-bit key hash so collision handling can be
  // forced deterministically (distinct keys, equal hashes).
  using KeyHashFn = std::function<uint64_t(const Value* key, int key_arity)>;
  KeyIndex(RelationView view, std::vector<int> key_cols, KeyHashFn test_hash,
           ThreadPool* pool = nullptr);

  // Row indices (into the view) whose key columns equal `key`
  // (key_cols.size() values), in ascending row order. The span points into
  // the index's arena and stays valid for the index's lifetime, across any
  // number of later probes (hit or miss).
  std::span<const int64_t> Lookup(const Value* key) const;

  // Lookup with the key's hash already computed (by HashKeys below): the
  // columnar probe loops hash a whole contiguous key column in one
  // vectorized pass, then walk the directory per key. `hash` MUST equal
  // HashKeys'/the index's hash of `key`; exact key equality is still
  // verified, so collisions behave exactly as in Lookup.
  std::span<const int64_t> LookupWithHash(uint64_t hash,
                                          const Value* key) const;

  // Batched probe hashing: out[i] = the index's hash of keys[i * key_arity
  // .. (i+1) * key_arity). For single-column keys without a test hash this
  // is one contiguous HashMany pass (the vectorizable splitmix loop) and
  // is bit-identical to per-key hashing.
  void HashKeys(const Value* keys, int64_t count, uint64_t* out) const;

  // True if some row matches `key`.
  bool Contains(const Value* key) const { return !Lookup(key).empty(); }

  int key_arity() const { return static_cast<int>(key_cols_.size()); }
  const RelationView& view() const { return view_; }
  const std::vector<int>& key_cols() const { return key_cols_; }

  // Number of distinct key values present (exact, even when distinct keys
  // collide on their 64-bit hash).
  int64_t num_distinct_keys() const { return num_distinct_keys_; }

 private:
  // One directory entry: a key's 64-bit hash plus its arena range.
  // len == 0 marks an empty slot (real groups always have len >= 1).
  struct Slot {
    uint64_t hash = 0;
    int64_t offset = 0;
    int64_t len = 0;
  };

  void Build(ThreadPool* pool);
  uint64_t HashKey(const Value* key) const;
  bool RowMatchesKey(int64_t row, const Value* key) const;

  RelationView view_;
  std::vector<int> key_cols_;
  KeyHashFn test_hash_;  // Null outside tests.

  // Row indices grouped by key: group g occupies
  // arena_[slot.offset, slot.offset + slot.len).
  std::vector<int64_t> arena_;
  // Linear-probe directory, partitioned by the hash's top bits; partition
  // P occupies dir_[dir_begin_[P], dir_begin_[P] + dir_mask_[P] + 1).
  std::vector<Slot> dir_;
  std::vector<int64_t> dir_begin_;
  std::vector<uint64_t> dir_mask_;  // Per-partition capacity - 1 (pow2).
  int part_bits_ = 0;
  int64_t num_distinct_keys_ = 0;
};

}  // namespace mpcqp

#endif  // MPCQP_RELATION_KEY_INDEX_H_
