#include "agg/aggregate.h"

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"
#include "mpc/exchange.h"
#include "mpc/metrics.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

// Engine options for local aggregation inside a cluster: the cluster's
// pool, morsel grain and layout mode, the caller's strategy. None affect
// output bytes (determinism contract of the engine).
GroupByEngineOptions EngineOptions(Cluster& cluster,
                                   const GroupByOptions& options) {
  GroupByEngineOptions engine;
  engine.strategy = options.strategy;
  engine.pool = &cluster.pool();
  engine.morsel_rows = cluster.morsel_rows();
  engine.layout = cluster.layout();
  return engine;
}

// First non-OK status by fragment index — a deterministic pick when
// several fragments fail concurrently.
Status FirstError(const std::vector<Status>& errors) {
  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }
  return OkStatus();
}

}  // namespace

StatusOr<DistRelation> DistributedGroupBySum(Cluster& cluster,
                                             const DistRelation& rel,
                                             const std::vector<int>& group_cols,
                                             int value_col,
                                             const GroupByOptions& options) {
  return DistributedGroupByAggregate(cluster, rel, group_cols, value_col,
                                     AggregateOp::kSum, options);
}

StatusOr<DistRelation> DistributedGroupByAggregate(
    Cluster& cluster, const DistRelation& rel,
    const std::vector<int>& group_cols, int value_col, AggregateOp op,
    const GroupByOptions& options) {
  MPCQP_CHECK(value_col >= 0 || op == AggregateOp::kCount);
  if (value_col >= 0) MPCQP_CHECK_LT(value_col, rel.arity());
  for (int c : group_cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, rel.arity());
  }
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  const int width = static_cast<int>(group_cols.size());
  const GroupByEngineOptions engine = EngineOptions(cluster, options);

  // How partials re-aggregate: COUNT partials are summed, the rest are
  // idempotent under their own op.
  const AggregateOp merge_op =
      op == AggregateOp::kCount ? AggregateOp::kSum : op;

  // A no-combiner COUNT over the scalar group would shuffle a relation
  // with no columns at all; pre-aggregating is strictly cheaper and keeps
  // the exchange row-shaped, so combiners are forced on for that corner.
  const bool use_combiners =
      options.use_combiners ||
      (op == AggregateOp::kCount && group_cols.empty());
  // COUNT needs no value payload: without combiners, ship only the group
  // columns and count rows on the receiving side.
  const bool drop_value = !use_combiners && op == AggregateOp::kCount;
  const int staged_value = drop_value ? -1 : width;

  // Stage 1: local pre-aggregation (free compute) or projection to the
  // shuffle shape. Per-fragment errors are collected and the first (by
  // fragment index) is returned — deterministic regardless of which
  // fragment tripped first in wall time.
  DistRelation staged(width + (drop_value ? 0 : 1), p);
  std::vector<Status> errors(p, OkStatus());
  if (use_combiners) {
    // Meter the stage-1 scans as columnar when the engine's (data-only)
    // heuristic will compact columns; stage 2 scans the staged shape,
    // which reads every column, so it never goes columnar.
    const int columns_read = width + (value_col >= 0 ? 1 : 0);
    std::optional<ScopedPhaseTimer> phase;
    if (UseColumnarScan(cluster.layout(), rel.arity(), columns_read)) {
      phase.emplace(cluster.metrics(), Phase::kColumnarScan);
    }
    cluster.pool().ParallelFor(p, [&](int64_t s) {
      StatusOr<Relation> partial = GroupByAggregateParallel(
          rel.fragment(static_cast<int>(s)), group_cols, value_col, op,
          engine);
      if (!partial.ok()) {
        errors[s] = partial.status();
        return;
      }
      staged.fragment(static_cast<int>(s)) = std::move(partial).value();
    });
  } else {
    std::vector<int> cols = group_cols;
    if (!drop_value) cols.push_back(value_col);
    cluster.pool().ParallelFor(p, [&](int64_t s) {
      staged.fragment(static_cast<int>(s)) =
          Project(rel.fragment(static_cast<int>(s)), cols);
    });
  }
  if (Status s = FirstError(errors); !s.ok()) return s;

  // One round: each group's partials meet at its hash owner. An empty
  // group key routes everything to the scalar group's single owner.
  std::vector<int> staged_group_cols(group_cols.size());
  for (size_t i = 0; i < group_cols.size(); ++i) {
    staged_group_cols[i] = static_cast<int>(i);
  }
  const HashFunction hash = cluster.NewHashFunction();
  const DistRelation routed = HashPartition(
      cluster, staged, staged_group_cols, hash, "group-by shuffle");

  // Stage 2: final aggregation of the routed partials (or raw rows).
  DistRelation result(width + 1, p);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    StatusOr<Relation> merged = GroupByAggregateParallel(
        routed.fragment(static_cast<int>(s)), staged_group_cols, staged_value,
        use_combiners ? merge_op : op, engine);
    if (!merged.ok()) {
      errors[s] = merged.status();
      return;
    }
    result.fragment(static_cast<int>(s)) = std::move(merged).value();
  });
  if (Status s = FirstError(errors); !s.ok()) return s;
  return result;
}

StatusOr<ScalarAggregateResult> DistributedSum(Cluster& cluster,
                                               const DistRelation& rel,
                                               int value_col, int fan_in) {
  MPCQP_CHECK_GE(fan_in, 2);
  MPCQP_CHECK_GE(value_col, 0);
  MPCQP_CHECK_LT(value_col, rel.arity());
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);

  // Local partials (free compute) through the scalar-group engine path:
  // the per-fragment scan is morsel-parallel and overflow-checked.
  GroupByEngineOptions engine;
  engine.pool = &cluster.pool();
  engine.morsel_rows = cluster.morsel_rows();
  engine.layout = cluster.layout();
  std::vector<Value> partial(p, 0);
  std::vector<Status> errors(p, OkStatus());
  {
    // Metered as a columnar scan when the engine's (data-only) heuristic
    // will compact the value column out of the wide rows.
    std::optional<ScopedPhaseTimer> scan_phase;
    if (UseColumnarScan(cluster.layout(), rel.arity(), 1)) {
      scan_phase.emplace(cluster.metrics(), Phase::kColumnarScan);
    }
    cluster.pool().ParallelFor(p, [&](int64_t s) {
      StatusOr<Relation> scalar =
          GroupByAggregateParallel(rel.fragment(static_cast<int>(s)), {},
                                   value_col, AggregateOp::kSum, engine);
      if (!scalar.ok()) {
        errors[s] = scalar.status();
        return;
      }
      partial[s] = scalar.value().empty() ? 0 : scalar.value().at(0, 0);
    });
  }
  if (Status s = FirstError(errors); !s.ok()) return s;

  // Aggregation tree: each round, server s with s % stride != 0 sends its
  // partial to its group leader s - (s % stride). The tree shape depends
  // only on (p, fan_in), so overflow detection here is deterministic too.
  int rounds = 0;
  int active = p;  // Partials live on servers 0, stride, 2*stride, ...
  int stride = 1;
  while (active > 1) {
    ++rounds;
    cluster.BeginRound("sum tree round " + std::to_string(rounds));
    Status round_error = OkStatus();
    for (int s = 0; s < p; s += stride) {
      if (s % (stride * fan_in) == 0) continue;
      const int leader = s - (s % (stride * fan_in));
      cluster.RecordMessage(s, leader, 1, 1);
      if (partial[leader] + partial[s] < partial[leader]) {
        if (round_error.ok()) {
          round_error = OutOfRangeError("distributed SUM overflows Value");
        }
      } else {
        partial[leader] += partial[s];
      }
      partial[s] = 0;
    }
    cluster.EndRound();
    if (!round_error.ok()) return round_error;
    stride *= fan_in;
    active = (p + stride - 1) / stride;
  }
  return ScalarAggregateResult{partial[0], rounds};
}

}  // namespace mpcqp
