#include "agg/aggregate.h"

#include "common/check.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"

namespace mpcqp {

DistRelation DistributedGroupBySum(Cluster& cluster, const DistRelation& rel,
                                   const std::vector<int>& group_cols,
                                   int value_col,
                                   const GroupByOptions& options) {
  return DistributedGroupByAggregate(cluster, rel, group_cols, value_col,
                                     AggregateOp::kSum, options);
}

DistRelation DistributedGroupByAggregate(Cluster& cluster,
                                         const DistRelation& rel,
                                         const std::vector<int>& group_cols,
                                         int value_col, AggregateOp op,
                                         const GroupByOptions& options) {
  MPCQP_CHECK(!group_cols.empty());
  MPCQP_CHECK_GE(value_col, 0);
  MPCQP_CHECK_LT(value_col, rel.arity());
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);

  // How partials re-aggregate: COUNT partials are summed, the rest are
  // idempotent under their own op.
  const AggregateOp merge_op =
      op == AggregateOp::kCount ? AggregateOp::kSum : op;

  // Optional local pre-aggregation (free compute).
  DistRelation staged(static_cast<int>(group_cols.size()) + 1, p);
  if (options.use_combiners) {
    cluster.pool().ParallelFor(p, [&](int64_t s) {
      staged.fragment(s) =
          GroupByAggregate(rel.fragment(s), group_cols, value_col, op);
    });
  } else {
    // Project to (group..., value) so both paths shuffle the same shape.
    std::vector<int> cols = group_cols;
    cols.push_back(value_col);
    cluster.pool().ParallelFor(p, [&](int64_t s) {
      staged.fragment(s) = Project(rel.fragment(s), cols);
    });
  }

  // One round: each group's partials meet at its hash owner.
  std::vector<int> staged_group_cols(group_cols.size());
  for (size_t i = 0; i < group_cols.size(); ++i) {
    staged_group_cols[i] = static_cast<int>(i);
  }
  const HashFunction hash = cluster.NewHashFunction();
  const DistRelation routed = HashPartition(
      cluster, staged, staged_group_cols, hash, "group-by shuffle");

  DistRelation result(static_cast<int>(group_cols.size()) + 1, p);
  const int value_pos = static_cast<int>(group_cols.size());
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    result.fragment(s) =
        GroupByAggregate(routed.fragment(s), staged_group_cols, value_pos,
                         options.use_combiners ? merge_op : op);
  });
  return result;
}

ScalarAggregateResult DistributedSum(Cluster& cluster,
                                     const DistRelation& rel, int value_col,
                                     int fan_in) {
  MPCQP_CHECK_GE(fan_in, 2);
  MPCQP_CHECK_GE(value_col, 0);
  MPCQP_CHECK_LT(value_col, rel.arity());
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);

  // Local partials (free compute).
  std::vector<Value> partial(p, 0);
  for (int s = 0; s < p; ++s) {
    const Relation& frag = rel.fragment(s);
    for (int64_t i = 0; i < frag.size(); ++i) {
      partial[s] += frag.at(i, value_col);
    }
  }

  // Aggregation tree: each round, server s with s % stride != 0 sends its
  // partial to its group leader s - (s % stride).
  int rounds = 0;
  int active = p;  // Partials live on servers 0, stride, 2*stride, ...
  int stride = 1;
  while (active > 1) {
    ++rounds;
    cluster.BeginRound("sum tree round " + std::to_string(rounds));
    const int next_stride = stride * fan_in;
    for (int s = 0; s < p; s += stride) {
      if (s % next_stride == 0) continue;
      const int leader = s - (s % next_stride);
      cluster.RecordMessage(s, leader, 1, 1);
      partial[leader] += partial[s];
      partial[s] = 0;
    }
    cluster.EndRound();
    stride = next_stride;
    active = (p + stride - 1) / stride;
  }
  return {partial[0], rounds};
}

}  // namespace mpcqp
