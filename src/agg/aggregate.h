#ifndef MPCQP_AGG_AGGREGATE_H_
#define MPCQP_AGG_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "agg/groupby_engine.h"
#include "common/statusor.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "relation/relation_ops.h"

namespace mpcqp {

// Distributed aggregation (the deck's slide-52 query: SELECT keys,
// SUM(...) GROUP BY keys — "queries are typically executed in multiple
// rounds" because a join round feeds an aggregation round). Local compute
// on both sides of the shuffle runs through the adaptive multi-strategy
// kernel in agg/groupby_engine.h.

struct GroupByOptions {
  // Pre-aggregate locally before the shuffle (the standard combiner
  // optimization). Off, the shuffle moves every input tuple and a heavy
  // group concentrates its entire weight on one server; on, each server
  // contributes at most one partial per group.
  bool use_combiners = true;
  // Local aggregation strategy; kAdaptive picks per fragment from sampled
  // group cardinality (see groupby_engine.h).
  GroupByStrategy strategy = GroupByStrategy::kAdaptive;
};

// SELECT group_cols..., SUM(value_col) GROUP BY group_cols in one round:
// shuffle by hash of the group key, aggregate locally. Output columns:
// group columns then the sum; each group on exactly one server. Empty
// group_cols forms one global scalar group (on the key's hash owner) —
// the same contract as the local GroupByAggregate. Fails with kOutOfRange
// when any group's sum exceeds the Value range.
StatusOr<DistRelation> DistributedGroupBySum(
    Cluster& cluster, const DistRelation& rel,
    const std::vector<int>& group_cols, int value_col,
    const GroupByOptions& options = {});

// General algebraic aggregates (SUM / COUNT / MIN / MAX): same round
// structure; combiner partials are merged with the op's re-aggregation
// (partial COUNTs are SUMmed, MIN of MINs, ...). For kCount, value_col
// may be -1; without combiners the shuffle then ships only the group
// columns (counting rows needs no value payload).
StatusOr<DistRelation> DistributedGroupByAggregate(
    Cluster& cluster, const DistRelation& rel,
    const std::vector<int>& group_cols, int value_col, AggregateOp op,
    const GroupByOptions& options = {});

// Global SUM(value_col) (no grouping) via a fan_in-ary aggregation tree:
// ceil(log_fan_in(p)) rounds, O(fan_in) load per round. This is the
// log_L(N) round structure behind the slide-105/125 aggregation lower
// bounds. Local partials run through the scalar-group engine path; both
// the partials and every tree merge are overflow-checked.
struct ScalarAggregateResult {
  Value sum = 0;
  int rounds = 0;
};
StatusOr<ScalarAggregateResult> DistributedSum(Cluster& cluster,
                                               const DistRelation& rel,
                                               int value_col, int fan_in = 2);

}  // namespace mpcqp

#endif  // MPCQP_AGG_AGGREGATE_H_
