#ifndef MPCQP_AGG_AGGREGATE_H_
#define MPCQP_AGG_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "relation/relation_ops.h"

namespace mpcqp {

// Distributed aggregation (the deck's slide-52 query: SELECT keys,
// SUM(...) GROUP BY keys — "queries are typically executed in multiple
// rounds" because a join round feeds an aggregation round).

struct GroupByOptions {
  // Pre-aggregate locally before the shuffle (the standard combiner
  // optimization). Off, the shuffle moves every input tuple and a heavy
  // group concentrates its entire weight on one server; on, each server
  // contributes at most one partial per group.
  bool use_combiners = true;
};

// SELECT group_cols..., SUM(value_col) GROUP BY group_cols in one round:
// shuffle by hash of the group key, aggregate locally. Output columns:
// group columns then the sum; each group on exactly one server.
DistRelation DistributedGroupBySum(Cluster& cluster, const DistRelation& rel,
                                   const std::vector<int>& group_cols,
                                   int value_col,
                                   const GroupByOptions& options = {});

// General algebraic aggregates (SUM / COUNT / MIN / MAX): same round
// structure; combiner partials are merged with the op's re-aggregation
// (partial COUNTs are SUMmed, MIN of MINs, ...).
DistRelation DistributedGroupByAggregate(Cluster& cluster,
                                         const DistRelation& rel,
                                         const std::vector<int>& group_cols,
                                         int value_col, AggregateOp op,
                                         const GroupByOptions& options = {});

// Global SUM(value_col) (no grouping) via a fan_in-ary aggregation tree:
// ceil(log_fan_in(p)) rounds, O(fan_in) load per round. This is the
// log_L(N) round structure behind the slide-105/125 aggregation lower
// bounds.
struct ScalarAggregateResult {
  Value sum = 0;
  int rounds = 0;
};
ScalarAggregateResult DistributedSum(Cluster& cluster, const DistRelation& rel,
                                     int value_col, int fan_in = 2);

}  // namespace mpcqp

#endif  // MPCQP_AGG_AGGREGATE_H_
