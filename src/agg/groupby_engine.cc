#include "agg/groupby_engine.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/flat_counter.h"
#include "common/hash.h"
#include "common/parallel_sort.h"
#include "common/simd.h"
#include "common/status.h"
#include "common/trace.h"

namespace mpcqp {

namespace {

// Radix fan-out: 256 partitions from the top hash byte. Enough that the
// per-partition table builds keep every worker busy, few enough that the
// per-chunk counting matrix (chunks x partitions) stays tiny.
constexpr int kRadixBits = 8;
constexpr int kRadixPartitions = 1 << kRadixBits;
constexpr int kRadixShift = 64 - kRadixBits;

// Adaptive thresholds (rationale in DESIGN.md "Aggregation engine"):
// inputs at or below kSmallInputRows keep the seed sorted-map path (the
// flat machinery costs more than it saves); otherwise a sampled prefix
// estimates the rows-per-group density, and at kTreeMergeDensity or more
// rows per distinct group the per-worker-partials strategy wins (its
// merge cost scales with #groups x #workers), else radix.
constexpr int64_t kSmallInputRows = 4096;
constexpr int64_t kSampleRowsPerInput = 2048;
constexpr int64_t kTreeMergeDensity = 16;

// The group-key seed, folded with the shared SplitMix64 (the same
// full-avalanche mix FlatCounter and the exchange hashing use). Fixed
// (data-only) seeds keep the engine's routing independent of thread count
// and morsel size.
constexpr uint64_t kGroupHashSeed = 0x9e3779b97f4a7c15ULL;

// Hash of a contiguous `width`-column group key (width 0 = the scalar
// group: a fixed constant, so every row lands in one group). Width-1 keys
// match simd::GroupHashMany, which the columnar scans batch through.
uint64_t HashKey(const Value* key, int width) {
  uint64_t h = kGroupHashSeed;
  for (int k = 0; k < width; ++k) h = SplitMix64(h ^ SplitMix64(key[k]));
  return h;
}

// Folds one input row into an accumulator (`inserted` = first row of this
// group). Returns false when SUM/COUNT would exceed the Value range —
// addends are non-negative, so partial sums are monotone and overflow
// occurrence is independent of accumulation order.
bool AccumulateRow(Value* acc, bool inserted, Value value, AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum:
      if (*acc + value < *acc) return false;
      *acc += value;
      return true;
    case AggregateOp::kCount:
      if (*acc + 1 == 0) return false;
      *acc += 1;
      return true;
    case AggregateOp::kMin:
      if (inserted || value < *acc) *acc = value;
      return true;
    case AggregateOp::kMax:
      if (inserted || value > *acc) *acc = value;
      return true;
  }
  return false;
}

// Folds a partial accumulator into another (the merge passes). COUNT
// partials merge by summation; MIN/MAX are idempotent under their own op.
bool MergePartial(Value* acc, bool inserted, Value partial, AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum:
    case AggregateOp::kCount:
      if (inserted) {
        *acc = partial;
        return true;
      }
      if (*acc + partial < *acc) return false;
      *acc += partial;
      return true;
    case AggregateOp::kMin:
      if (inserted || partial < *acc) *acc = partial;
      return true;
    case AggregateOp::kMax:
      if (inserted || partial > *acc) *acc = partial;
      return true;
  }
  return false;
}

// Open-addressing (hash, group key) -> accumulator table. Keys live in a
// flat arena owned by the table; slots hold entry indices so growth only
// rebuilds the index, never moves keys or accumulators.
class GroupTable {
 public:
  explicit GroupTable(int key_width)
      : key_width_(key_width), slots_(16, 0) {}

  struct Entry {
    uint64_t hash = 0;
    Value acc = 0;
    int64_t key_pos = 0;
  };

  // Pre-grows the slot index so `groups` entries insert without a rehash.
  void Reserve(int64_t groups) {
    size_t cap = slots_.size();
    while (static_cast<int64_t>(cap) < 2 * groups) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
    entries_.reserve(static_cast<size_t>(groups));
    keys_.reserve(static_cast<size_t>(groups) * key_width_);
  }

  // The accumulator for (hash, key), inserting it at 0 first; second is
  // true exactly when the group is new. The returned pointer is valid
  // until the next Upsert.
  std::pair<Value*, bool> Upsert(uint64_t hash, const Value* key) {
    if (2 * (static_cast<int64_t>(entries_.size()) + 1) >
        static_cast<int64_t>(slots_.size())) {
      Rehash(slots_.size() * 2);
    }
    const uint64_t mask = slots_.size() - 1;
    for (uint64_t i = hash & mask;; i = (i + 1) & mask) {
      const uint32_t slot = slots_[i];
      if (slot == 0) {
        Entry e;
        e.hash = hash;
        e.key_pos = static_cast<int64_t>(keys_.size());
        keys_.insert(keys_.end(), key, key + key_width_);
        entries_.push_back(e);
        slots_[i] = static_cast<uint32_t>(entries_.size());
        return {&entries_.back().acc, true};
      }
      Entry& e = entries_[slot - 1];
      if (e.hash == hash &&
          std::equal(key, key + key_width_, keys_.data() + e.key_pos)) {
        return {&e.acc, false};
      }
    }
  }

  int64_t num_groups() const {
    return static_cast<int64_t>(entries_.size());
  }
  const std::vector<Entry>& entries() const { return entries_; }
  const Value* key_of(const Entry& e) const {
    return keys_.data() + e.key_pos;
  }

 private:
  void Rehash(size_t cap) {
    slots_.assign(cap, 0);
    const uint64_t mask = cap - 1;
    for (size_t n = 0; n < entries_.size(); ++n) {
      uint64_t i = entries_[n].hash & mask;
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = static_cast<uint32_t>(n + 1);
    }
  }

  int key_width_;
  std::vector<uint32_t> slots_;  // Entry index + 1; 0 = empty.
  std::vector<Entry> entries_;
  std::vector<Value> keys_;  // key_width_ values per entry.
};

// Merges src's partials into dst; false on Value overflow.
bool MergeTable(GroupTable* dst, const GroupTable& src, AggregateOp op) {
  dst->Reserve(dst->num_groups() + src.num_groups());
  for (const GroupTable::Entry& e : src.entries()) {
    auto [acc, inserted] = dst->Upsert(e.hash, src.key_of(e));
    if (!MergePartial(acc, inserted, e.acc, op)) return false;
  }
  return true;
}

// Shared emission: sorts (key, accumulator) pairs lexicographically by the
// full group key and bulk-fills the output. Group keys are unique, so the
// sort order — and therefore the output bytes — is a total order
// independent of how threads partitioned the work.
Relation EmitSorted(std::vector<std::pair<const Value*, Value>>* groups,
                    int key_width, ThreadPool* pool, int64_t grain) {
  const int out_arity = key_width + 1;
  Relation out(out_arity);
  const int64_t g = static_cast<int64_t>(groups->size());
  if (g == 0) return out;
  ParallelSort(pool, *groups,
               [key_width](const std::pair<const Value*, Value>& a,
                           const std::pair<const Value*, Value>& b) {
                 return std::lexicographical_compare(
                     a.first, a.first + key_width, b.first,
                     b.first + key_width);
               });
  Value* base = out.ResizeRowsForOverwrite(g);
  const auto fill = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      Value* dst = base + i * out_arity;
      const auto& [key, acc] = (*groups)[i];
      std::copy(key, key + key_width, dst);
      dst[key_width] = acc;
    }
  };
  if (pool != nullptr) {
    pool->ParallelForGrained(g, grain, fill);
  } else {
    fill(0, g);
  }
  return out;
}

// The seed path: one serial std::map accumulator over every input in
// order. Lowest constant factor on small inputs; also the differential
// reference the parallel strategies are tested against.
StatusOr<Relation> RunSortedMap(const std::vector<RelationView>& inputs,
                                const std::vector<int>& group_cols,
                                int value_col, AggregateOp op) {
  std::map<std::vector<Value>, Value> accumulators;
  std::vector<Value> key(group_cols.size());
  for (const RelationView& in : inputs) {
    for (int64_t i = 0; i < in.size(); ++i) {
      const Value* row = in.row(i);
      for (size_t k = 0; k < group_cols.size(); ++k) {
        key[k] = row[group_cols[k]];
      }
      const Value value = value_col >= 0 ? row[value_col] : 0;
      auto [it, inserted] = accumulators.try_emplace(key, 0);
      if (!AccumulateRow(&it->second, inserted, value, op)) {
        return OutOfRangeError("group-by aggregate overflows Value");
      }
    }
  }
  Relation out(static_cast<int>(group_cols.size()) + 1);
  out.Reserve(static_cast<int64_t>(accumulators.size()));
  std::vector<Value> scratch;
  for (const auto& [group, aggregate] : accumulators) {
    scratch = group;
    scratch.push_back(aggregate);
    out.AppendRow(scratch.data());
  }
  return out;
}

// Compacts a scan range's grouping columns into row-major `keys` (width
// values per row) and its value column into `vals` — the columnar scan
// front-end: one pass over the wide rows, after which the hot
// hash/accumulate loops run over contiguous compact arrays. width == 1
// lowers to the shared GatherKeyColumn kernel (unit-stride output).
void CompactScanColumns(const RelationView& in,
                        const std::vector<int>& group_cols, int value_col,
                        int64_t begin, int64_t end, Value* keys,
                        Value* vals) {
  const int width = static_cast<int>(group_cols.size());
  if (width == 1) {
    GatherKeyColumn(in, group_cols[0], begin, end, keys);
  } else if (width > 1) {
    const int64_t n = end - begin;
    for (int64_t i = 0; i < n; ++i) {
      const Value* row = in.row(begin + i);
      for (int k = 0; k < width; ++k) {
        keys[i * width + k] = row[group_cols[k]];
      }
    }
  }
  if (value_col >= 0) GatherKeyColumn(in, value_col, begin, end, vals);
}

// Per-worker partial tables over a morsel-grained scan, then a pairwise
// merge tree. Which worker sees which rows varies run to run; the final
// accumulators do not (exact algebraic partials + unique-key sort).
StatusOr<Relation> RunTreeMerge(const std::vector<RelationView>& inputs,
                                const std::vector<int>& group_cols,
                                int value_col, AggregateOp op,
                                const GroupByEngineOptions& options,
                                uint64_t hash_mask, bool columnar) {
  const int width = static_cast<int>(group_cols.size());
  const int slots =
      options.pool != nullptr ? options.pool->num_threads() : 1;
  std::vector<GroupTable> tables(slots, GroupTable(width));
  // Slot 0 is the calling thread; workers map to 1..slots-1. Each slot is
  // only ever touched by its own thread, so no synchronization is needed.
  std::vector<Status> errors(slots, OkStatus());
  const int64_t grain = std::max<int64_t>(1, options.morsel_rows);
  for (const RelationView& in : inputs) {
    const auto scan = [&](int64_t begin, int64_t end) {
      const int slot = ThreadPool::current_worker_index() + 1;
      GroupTable& table = tables[slot];
      if (!errors[slot].ok()) return;  // Drain remaining morsels cheaply.
      if (columnar) {
        // Columnar scan: compact the grouping + value columns for this
        // morsel, then hash/accumulate over the contiguous copies — the
        // wide rows are read exactly once. Hashes and accumulation order
        // match the row path, so outputs are bit-identical.
        const int64_t n = end - begin;
        std::vector<Value> keys(static_cast<size_t>(n) * width);
        std::vector<Value> vals(value_col >= 0 ? static_cast<size_t>(n) : 0);
        CompactScanColumns(in, group_cols, value_col, begin, end,
                           keys.data(), vals.data());
        // Single-column keys hash as one SIMD pass over the compacted
        // column (bit-identical to HashKey by the splitmix identity).
        std::vector<uint64_t> hashes;
        if (width == 1) {
          hashes.resize(static_cast<size_t>(n));
          simd::GroupHashMany(keys.data(), n, kGroupHashSeed, hash_mask,
                              hashes.data());
        }
        for (int64_t i = 0; i < n; ++i) {
          const Value* key = keys.data() + i * width;
          const uint64_t h =
              width == 1 ? hashes[i] : HashKey(key, width) & hash_mask;
          auto [acc, inserted] = table.Upsert(h, key);
          const Value value = value_col >= 0 ? vals[i] : 0;
          if (!AccumulateRow(acc, inserted, value, op)) {
            errors[slot] =
                OutOfRangeError("group-by aggregate overflows Value");
            return;
          }
        }
        return;
      }
      std::vector<Value> key(width);
      for (int64_t i = begin; i < end; ++i) {
        const Value* row = in.row(i);
        for (int k = 0; k < width; ++k) key[k] = row[group_cols[k]];
        const uint64_t h = HashKey(key.data(), width) & hash_mask;
        auto [acc, inserted] = table.Upsert(h, key.data());
        const Value value = value_col >= 0 ? row[value_col] : 0;
        if (!AccumulateRow(acc, inserted, value, op)) {
          errors[slot] = OutOfRangeError("group-by aggregate overflows Value");
          return;
        }
      }
    };
    if (options.pool != nullptr) {
      options.pool->ParallelForGrained(in.size(), grain, scan);
    } else if (!in.empty()) {
      scan(0, in.size());
    }
  }
  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }
  // Pairwise merge tree: level l merges table i+stride into table i. The
  // tree shape depends only on the slot count; the merged contents do not.
  for (int stride = 1; stride < slots; stride *= 2) {
    std::vector<int> lhs;
    for (int i = 0; i + stride < slots; i += 2 * stride) lhs.push_back(i);
    const auto merge = [&](int64_t j) {
      const int i = lhs[j];
      if (!MergeTable(&tables[i], tables[i + stride], op)) {
        errors[i] = OutOfRangeError("group-by aggregate overflows Value");
      }
    };
    if (options.pool != nullptr) {
      options.pool->ParallelFor(static_cast<int64_t>(lhs.size()), merge);
    } else {
      for (int64_t j = 0; j < static_cast<int64_t>(lhs.size()); ++j) {
        merge(j);
      }
    }
    for (const Status& s : errors) {
      if (!s.ok()) return s;
    }
  }
  const GroupTable& final_table = tables[0];
  std::vector<std::pair<const Value*, Value>> groups;
  groups.reserve(static_cast<size_t>(final_table.num_groups()));
  for (const GroupTable::Entry& e : final_table.entries()) {
    groups.push_back({final_table.key_of(e), e.acc});
  }
  return EmitSorted(&groups, width, options.pool, grain);
}

// Two-phase radix: count rows per (morsel, partition), prefix-sum exact
// scatter offsets, scatter (hash, row pointer) pairs — or (hash, compact
// key, value) triples when `columnar` — then aggregate each partition with
// its own table; partitions are disjoint by construction, so the
// per-partition builds need no merge and no locks.
StatusOr<Relation> RunRadix(const std::vector<RelationView>& inputs,
                            const std::vector<int>& group_cols, int value_col,
                            AggregateOp op,
                            const GroupByEngineOptions& options,
                            uint64_t hash_mask, int64_t total_rows,
                            bool columnar) {
  const int width = static_cast<int>(group_cols.size());
  const int64_t grain = std::max<int64_t>(1, options.morsel_rows);
  constexpr int P = kRadixPartitions;

  // Morsel decomposition over all inputs — derived from (sizes, grain)
  // only, so the scatter layout is thread-count independent.
  struct Chunk {
    const RelationView* input;
    int64_t begin, end;    // Row range within *input.
    int64_t offset;        // Flat offset of `begin` across all inputs.
  };
  std::vector<Chunk> chunks;
  int64_t flat = 0;
  for (const RelationView& in : inputs) {
    for (int64_t b = 0; b < in.size(); b += grain) {
      const int64_t e = std::min(in.size(), b + grain);
      chunks.push_back({&in, b, e, flat + b});
    }
    flat += in.size();
  }
  const int64_t num_chunks = static_cast<int64_t>(chunks.size());

  // Columnar: the grouping + value columns are compacted into flat arrays
  // (aligned with `hashes`) during pass 1, so the scatter and build
  // passes below never touch the wide input rows again.
  std::vector<Value> all_keys;
  std::vector<Value> all_vals;
  if (columnar) {
    all_keys.resize(static_cast<size_t>(total_rows) * width);
    if (value_col >= 0) all_vals.resize(static_cast<size_t>(total_rows));
  }

  // Pass 1: per-chunk hashes + per-(chunk, partition) counts.
  std::vector<uint64_t> hashes(static_cast<size_t>(total_rows));
  std::vector<int64_t> counts(static_cast<size_t>(num_chunks) * P, 0);
  const auto count_pass = [&](int64_t c) {
    const Chunk& ch = chunks[c];
    int64_t* my_counts = counts.data() + c * P;
    if (columnar) {
      const int64_t n = ch.end - ch.begin;
      Value* keys = all_keys.data() + ch.offset * width;
      Value* vals = value_col >= 0 ? all_vals.data() + ch.offset : nullptr;
      CompactScanColumns(*ch.input, group_cols, value_col, ch.begin, ch.end,
                         keys, vals);
      // Batched: one SIMD hash pass over the compacted keys (width 1),
      // then the shared top-byte histogram kernel for the radix counts.
      uint64_t* my_hashes = hashes.data() + ch.offset;
      if (width == 1) {
        simd::GroupHashMany(keys, n, kGroupHashSeed, hash_mask, my_hashes);
      } else {
        for (int64_t i = 0; i < n; ++i) {
          my_hashes[i] = HashKey(keys + i * width, width) & hash_mask;
        }
      }
      simd::HistogramTopBits(my_hashes, n, kRadixBits, my_counts);
      return;
    }
    std::vector<Value> key(width);
    for (int64_t i = ch.begin; i < ch.end; ++i) {
      const Value* row = ch.input->row(i);
      for (int k = 0; k < width; ++k) key[k] = row[group_cols[k]];
      const uint64_t h = HashKey(key.data(), width) & hash_mask;
      hashes[static_cast<size_t>(ch.offset + (i - ch.begin))] = h;
      ++my_counts[h >> kRadixShift];
    }
  };
  if (options.pool != nullptr) {
    options.pool->ParallelFor(num_chunks, count_pass);
  } else {
    for (int64_t c = 0; c < num_chunks; ++c) count_pass(c);
  }

  // Exact partition-major offsets (serial: num_chunks x 256 entries).
  std::vector<int64_t> chunk_offsets(static_cast<size_t>(num_chunks) * P);
  std::vector<int64_t> part_begin(P + 1, 0);
  int64_t run = 0;
  for (int p = 0; p < P; ++p) {
    part_begin[p] = run;
    for (int64_t c = 0; c < num_chunks; ++c) {
      chunk_offsets[c * P + p] = run;
      run += counts[c * P + p];
    }
  }
  part_begin[P] = run;

  // Pass 2: scatter into partition-contiguous arrays at the precomputed
  // disjoint offsets — (hash, row pointer) pairs on the row path, (hash,
  // compact key, value) triples on the columnar path. Scatter order within
  // a partition is flat-offset order either way, so the partition builds
  // upsert in the same sequence and produce identical tables.
  std::vector<uint64_t> part_hash(static_cast<size_t>(total_rows));
  std::vector<const Value*> part_row;
  std::vector<Value> part_keys;
  std::vector<Value> part_vals;
  if (columnar) {
    part_keys.resize(static_cast<size_t>(total_rows) * width);
    if (value_col >= 0) part_vals.resize(static_cast<size_t>(total_rows));
  } else {
    part_row.resize(static_cast<size_t>(total_rows));
  }
  const auto scatter_pass = [&](int64_t c) {
    const Chunk& ch = chunks[c];
    int64_t* cursor = chunk_offsets.data() + c * P;
    if (columnar) {
      const int64_t n = ch.end - ch.begin;
      const Value* keys = all_keys.data() + ch.offset * width;
      for (int64_t i = 0; i < n; ++i) {
        const uint64_t h = hashes[static_cast<size_t>(ch.offset + i)];
        const int64_t pos = cursor[h >> kRadixShift]++;
        part_hash[static_cast<size_t>(pos)] = h;
        std::copy(keys + i * width, keys + (i + 1) * width,
                  part_keys.data() + pos * width);
        if (value_col >= 0) {
          part_vals[static_cast<size_t>(pos)] =
              all_vals[static_cast<size_t>(ch.offset + i)];
        }
      }
      return;
    }
    for (int64_t i = ch.begin; i < ch.end; ++i) {
      const uint64_t h =
          hashes[static_cast<size_t>(ch.offset + (i - ch.begin))];
      const int64_t pos = cursor[h >> kRadixShift]++;
      part_hash[static_cast<size_t>(pos)] = h;
      part_row[static_cast<size_t>(pos)] = ch.input->row(i);
    }
  };
  if (options.pool != nullptr) {
    options.pool->ParallelFor(num_chunks, scatter_pass);
  } else {
    for (int64_t c = 0; c < num_chunks; ++c) scatter_pass(c);
  }

  // Pass 3: build each partition's table independently.
  std::vector<GroupTable> tables(P, GroupTable(width));
  std::vector<Status> errors(P, OkStatus());
  const auto build_pass = [&](int64_t p) {
    GroupTable& table = tables[p];
    if (columnar) {
      for (int64_t i = part_begin[p]; i < part_begin[p + 1]; ++i) {
        auto [acc, inserted] = table.Upsert(
            part_hash[static_cast<size_t>(i)], part_keys.data() + i * width);
        const Value value =
            value_col >= 0 ? part_vals[static_cast<size_t>(i)] : 0;
        if (!AccumulateRow(acc, inserted, value, op)) {
          errors[p] = OutOfRangeError("group-by aggregate overflows Value");
          return;
        }
      }
      return;
    }
    std::vector<Value> key(width);
    for (int64_t i = part_begin[p]; i < part_begin[p + 1]; ++i) {
      const Value* row = part_row[static_cast<size_t>(i)];
      for (int k = 0; k < width; ++k) key[k] = row[group_cols[k]];
      auto [acc, inserted] =
          table.Upsert(part_hash[static_cast<size_t>(i)], key.data());
      const Value value = value_col >= 0 ? row[value_col] : 0;
      if (!AccumulateRow(acc, inserted, value, op)) {
        errors[p] = OutOfRangeError("group-by aggregate overflows Value");
        return;
      }
    }
  };
  if (options.pool != nullptr) {
    options.pool->ParallelFor(P, build_pass);
  } else {
    for (int64_t p = 0; p < P; ++p) build_pass(p);
  }
  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }

  int64_t num_groups = 0;
  for (const GroupTable& t : tables) num_groups += t.num_groups();
  std::vector<std::pair<const Value*, Value>> groups;
  groups.reserve(static_cast<size_t>(num_groups));
  for (const GroupTable& t : tables) {
    for (const GroupTable::Entry& e : t.entries()) {
      groups.push_back({t.key_of(e), e.acc});
    }
  }
  return EmitSorted(&groups, width, options.pool, grain);
}

}  // namespace

const char* GroupByStrategyName(GroupByStrategy strategy) {
  switch (strategy) {
    case GroupByStrategy::kAdaptive:
      return "adaptive";
    case GroupByStrategy::kSortedMap:
      return "sorted-map";
    case GroupByStrategy::kTreeMerge:
      return "tree-merge";
    case GroupByStrategy::kRadix:
      return "radix";
  }
  return "unknown";
}

GroupByStrategy ChooseGroupByStrategy(const std::vector<RelationView>& inputs,
                                      const std::vector<int>& group_cols) {
  int64_t total = 0;
  for (const RelationView& in : inputs) total += in.size();
  if (total <= kSmallInputRows) return GroupByStrategy::kSortedMap;
  // Estimate rows-per-group density from a prefix of each input. Reads
  // only the data, so the choice — and therefore the output bytes — never
  // depends on thread count or morsel size.
  const int width = static_cast<int>(group_cols.size());
  FlatCounter distinct;
  int64_t sampled = 0;
  std::vector<Value> key(group_cols.size());
  for (const RelationView& in : inputs) {
    const int64_t take = std::min(in.size(), kSampleRowsPerInput);
    for (int64_t i = 0; i < take; ++i) {
      const Value* row = in.row(i);
      for (int k = 0; k < width; ++k) key[k] = row[group_cols[k]];
      distinct.Add(HashKey(key.data(), width));
    }
    sampled += take;
  }
  if (distinct.num_keys() * kTreeMergeDensity <= sampled) {
    return GroupByStrategy::kTreeMerge;
  }
  return GroupByStrategy::kRadix;
}

StatusOr<Relation> GroupByAggregateParallel(
    const std::vector<RelationView>& inputs,
    const std::vector<int>& group_cols, int value_col, AggregateOp op,
    const GroupByEngineOptions& options) {
  // Validate against the first non-trivial input; all inputs must agree.
  int arity = -1;
  int64_t total_rows = 0;
  for (const RelationView& in : inputs) {
    if (arity == -1) {
      arity = in.arity();
    } else {
      MPCQP_CHECK_EQ(in.arity(), arity);
    }
    total_rows += in.size();
  }
  if (arity == -1) arity = 0;
  MPCQP_CHECK(value_col >= 0 || op == AggregateOp::kCount);
  if (value_col >= 0) MPCQP_CHECK_LT(value_col, arity);
  for (int c : group_cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, arity);
  }
  // Nullary inputs (no columns at all): only COUNT over the scalar group
  // is expressible, and the answer is just the row count.
  if (arity == 0) {
    MPCQP_CHECK(group_cols.empty());
    Relation out(1);
    if (total_rows > 0) out.AppendRow({static_cast<Value>(total_rows)});
    return out;
  }

  GroupByStrategy strategy = options.strategy;
  if (strategy == GroupByStrategy::kAdaptive) {
    strategy = ChooseGroupByStrategy(inputs, group_cols);
  }
  MPCQP_CHECK_GE(options.hash_bits, 1);
  MPCQP_CHECK_LE(options.hash_bits, 64);
  const uint64_t hash_mask = options.hash_bits >= 64
                                 ? ~uint64_t{0}
                                 : (uint64_t{1} << options.hash_bits) - 1;

  // Columnar scan decision: derived from (layout mode, arity, columns
  // read) only — never thread count or morsel size — so the same path
  // runs in every decomposition and outputs stay bit-identical.
  const int columns_read =
      static_cast<int>(group_cols.size()) + (value_col >= 0 ? 1 : 0);
  const bool columnar = UseColumnarScan(options.layout, arity, columns_read);

  MPCQP_TRACE_SCOPE_ARG("group-by engine", "compute", total_rows);
  switch (strategy) {
    case GroupByStrategy::kSortedMap:
      return RunSortedMap(inputs, group_cols, value_col, op);
    case GroupByStrategy::kTreeMerge:
      return RunTreeMerge(inputs, group_cols, value_col, op, options,
                          hash_mask, columnar);
    case GroupByStrategy::kRadix:
      return RunRadix(inputs, group_cols, value_col, op, options, hash_mask,
                      total_rows, columnar);
    case GroupByStrategy::kAdaptive:
      break;  // Resolved above.
  }
  MPCQP_CHECK(false) << "unreachable group-by strategy";
  return InvalidArgumentError("unreachable");
}

StatusOr<Relation> GroupByAggregateParallel(
    RelationView input, const std::vector<int>& group_cols, int value_col,
    AggregateOp op, const GroupByEngineOptions& options) {
  return GroupByAggregateParallel(std::vector<RelationView>{input},
                                  group_cols, value_col, op, options);
}

}  // namespace mpcqp
