#ifndef MPCQP_AGG_GROUPBY_ENGINE_H_
#define MPCQP_AGG_GROUPBY_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "common/thread_pool.h"
#include "relation/relation.h"
#include "relation/relation_ops.h"
#include "relation/relation_view.h"

namespace mpcqp {

// Multi-strategy morsel-parallel group-by kernel — the shared aggregation
// substrate under GroupByAggregate combiners, the distributed merge pass,
// heavy-hitter detection, and the scalar aggregation tree.
//
// All strategies compute exactly the same function as the seed std::map
// path in relation_ops.cc (output sorted lexicographically by group key,
// group columns then the aggregate), so they are interchangeable: every
// aggregate is algebraic (associative + commutative over exact uint64
// accumulators) and the final emission sorts by the full — unique — group
// key, so the output bytes are independent of which thread, morsel, or
// partition processed which rows. Overflow (SUM/COUNT exceeding Value) is
// detected on every add; since addends are non-negative, partial sums are
// monotone and a group overflows in every decomposition or in none, so the
// error outcome is deterministic too.
enum class GroupByStrategy {
  // Estimate group cardinality from a sampled prefix of each input and
  // pick one of the concrete strategies below. The estimate reads only
  // the data (never the thread count or morsel size), preserving the
  // determinism contract.
  kAdaptive,
  // The seed path: one serial std::map accumulator. Lowest constant
  // factor on small inputs; the fallback and the differential reference.
  kSortedMap,
  // Per-worker-thread open-addressing partials, merged pairwise in a
  // tree. One scan, no data movement; merge cost scales with #groups x
  // #threads, so it wins when groups are few (heavy duplication).
  kTreeMerge,
  // Two-phase radix: count + scatter rows into 256 hash partitions, then
  // aggregate each partition independently in parallel. Two extra passes
  // over the data buy partition-parallel table builds with no merge, so
  // it wins when groups are many.
  kRadix,
};

// Stable lower-case name ("adaptive", "sorted-map", ...) for logs/benches.
const char* GroupByStrategyName(GroupByStrategy strategy);

struct GroupByEngineOptions {
  GroupByStrategy strategy = GroupByStrategy::kAdaptive;
  // Parallel strategies run their scans/merges on this pool; nullptr runs
  // everything inline (still through the same code paths).
  ThreadPool* pool = nullptr;
  // Scan grain in rows (the cluster's morsel size). Affects scheduling
  // only, never output bytes.
  int64_t morsel_rows = 8192;
  // Test hook: group hashes are masked to this many low bits. 64 = off.
  // Small values force every probe/partition collision path to execute;
  // outputs must not change.
  int hash_bits = 64;
  // Physical scan layout (see relation/columnar.h). kAuto compacts the
  // grouping + value columns out of wide rows before the hot loops
  // (UseColumnarScan heuristic); kRow always strides over the rows;
  // kColumnar forces compaction whenever the scan reads a strict column
  // subset. Never changes output bytes — only memory access patterns.
  LayoutMode layout = LayoutMode::kAuto;
};

// The strategy kAdaptive resolves to for this input: samples a prefix of
// each input view, estimates distinct-group density with a FlatCounter
// over group-key hashes, and applies the thresholds documented in
// DESIGN.md. Exposed so benches/tests can report and pin the choice.
GroupByStrategy ChooseGroupByStrategy(const std::vector<RelationView>& inputs,
                                      const std::vector<int>& group_cols);

// SELECT group_cols, OP(value_col) ... GROUP BY group_cols over the
// concatenation of `inputs` (all the same arity) — multi-input so callers
// aggregate across fragments without materializing a union. Contract
// matches relation_ops::GroupByAggregate exactly: output columns are the
// group columns then the aggregate, sorted by group key; empty group_cols
// forms one scalar group (empty inputs yield an empty output); value_col
// may be -1 for kCount; kSum/kCount fail with kOutOfRange on Value
// overflow instead of wrapping.
StatusOr<Relation> GroupByAggregateParallel(
    const std::vector<RelationView>& inputs,
    const std::vector<int>& group_cols, int value_col, AggregateOp op,
    const GroupByEngineOptions& options = {});

// Single-input convenience overload.
StatusOr<Relation> GroupByAggregateParallel(
    RelationView input, const std::vector<int>& group_cols, int value_col,
    AggregateOp op, const GroupByEngineOptions& options = {});

}  // namespace mpcqp

#endif  // MPCQP_AGG_GROUPBY_ENGINE_H_
