#include "matmul/sql_mm.h"

#include <map>

#include "common/check.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"

namespace mpcqp {

DistRelation SqlMatrixMultiply(Cluster& cluster, const DistRelation& a,
                               const DistRelation& b) {
  MPCQP_CHECK_EQ(a.arity(), 3);
  MPCQP_CHECK_EQ(b.arity(), 3);
  const int p = cluster.num_servers();

  // Round 1: hash join on j (A.j is column 1, B.j is column 0).
  const HashFunction hash = cluster.NewHashFunction();
  cluster.BeginRound("sql MM: join on j");
  DistRelation a_parts = HashPartition(cluster, a, {1}, hash, "");
  DistRelation b_parts = HashPartition(cluster, b, {0}, hash, "");
  cluster.EndRound();

  // Local compute: partial products, pre-aggregated per (i, k) before the
  // shuffle (the standard combiner optimization).
  DistRelation partials(3, p);
  for (int s = 0; s < p; ++s) {
    const Relation joined =
        HashJoinLocal(a_parts.fragment(s), b_parts.fragment(s), {1}, {0});
    // joined columns: (i, j, vA, k, vB).
    std::map<std::pair<Value, Value>, Value> sums;
    for (int64_t t = 0; t < joined.size(); ++t) {
      const Value* row = joined.row(t);
      sums[{row[0], row[3]}] += row[2] * row[4];
    }
    for (const auto& [ik, sum] : sums) {
      partials.fragment(s).AppendRow({ik.first, ik.second, sum});
    }
  }

  // Round 2: re-partition partials by (i, k), then final aggregation.
  const HashFunction hash2 = cluster.NewHashFunction();
  DistRelation routed =
      HashPartition(cluster, partials, {0, 1}, hash2, "sql MM: aggregate");

  DistRelation result(3, p);
  for (int s = 0; s < p; ++s) {
    const Relation& frag = routed.fragment(s);
    std::map<std::pair<Value, Value>, Value> sums;
    for (int64_t t = 0; t < frag.size(); ++t) {
      const Value* row = frag.row(t);
      sums[{row[0], row[1]}] += row[2];
    }
    for (const auto& [ik, sum] : sums) {
      if (sum != 0) {
        result.fragment(s).AppendRow({ik.first, ik.second, sum});
      }
    }
  }
  return result;
}

}  // namespace mpcqp
