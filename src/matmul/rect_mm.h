#ifndef MPCQP_MATMUL_RECT_MM_H_
#define MPCQP_MATMUL_RECT_MM_H_

#include "matmul/matrix.h"
#include "mpc/cluster.h"

namespace mpcqp {

// Non-square matrix multiplication (slide 127's "other results"):
// C (m × n) = A (m × k) · B (k × n) in one round.
//
// The output is tiled by a g1 × g2 server grid; server (i, j) receives its
// m/g1 rows of A (each k wide) and n/g2 columns of B. The optimal grid
// balances m·k/g1 + k·n/g2 subject to g1·g2 <= p — the same optimization
// as the Cartesian-product grid, with |R| = mk and |S| = kn. For m = n it
// degenerates to RectangleBlockMm.
struct RectMmResult {
  Matrix c;
  int grid_rows = 0;
  int grid_cols = 0;
};

RectMmResult GeneralRectangleMm(Cluster& cluster, const Matrix& a,
                                const Matrix& b);

}  // namespace mpcqp

#endif  // MPCQP_MATMUL_RECT_MM_H_
