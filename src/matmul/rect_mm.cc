#include "matmul/rect_mm.h"

#include <map>

#include "common/check.h"
#include "join/cartesian.h"

namespace mpcqp {

RectMmResult GeneralRectangleMm(Cluster& cluster, const Matrix& a,
                                const Matrix& b) {
  MPCQP_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  const int p = cluster.num_servers();

  // Grid minimizing m·k/g1 + k·n/g2 (reuse the Cartesian grid optimizer),
  // clamped so no dimension exceeds its extent.
  auto [g1, g2] = OptimalGridShape(static_cast<int64_t>(m) * k,
                                   static_cast<int64_t>(k) * n, p);
  g1 = std::min(g1, std::max(1, m));
  g2 = std::min(g2, std::max(1, n));

  // Initial placement: row r of A on server r*p/m; column c of B on
  // server c*p/n (not communication).
  const auto a_owner = [&](int row) {
    return static_cast<int>(static_cast<int64_t>(row) * p / std::max(1, m));
  };
  const auto b_owner = [&](int col) {
    return static_cast<int>(static_cast<int64_t>(col) * p / std::max(1, n));
  };

  cluster.BeginRound("general rectangle MM");
  Matrix c(m, n);
  for (int gi = 0; gi < g1; ++gi) {
    for (int gj = 0; gj < g2; ++gj) {
      const int dst = gi * g2 + gj;
      const int r0 = gi * m / g1;
      const int r1 = (gi + 1) * m / g1;
      const int c0 = gj * n / g2;
      const int c1 = (gj + 1) * n / g2;

      std::map<int, int64_t> recv_from;
      for (int r = r0; r < r1; ++r) recv_from[a_owner(r)] += k;
      for (int col = c0; col < c1; ++col) recv_from[b_owner(col)] += k;
      for (const auto& [src, count] : recv_from) {
        cluster.RecordMessage(src, dst, count, count);
      }

      for (int r = r0; r < r1; ++r) {
        for (int col = c0; col < c1; ++col) {
          int64_t sum = 0;
          for (int kk = 0; kk < k; ++kk) sum += a.at(r, kk) * b.at(kk, col);
          c.at(r, col) = sum;
        }
      }
    }
  }
  cluster.EndRound();
  return RectMmResult{std::move(c), g1, g2};
}

}  // namespace mpcqp
