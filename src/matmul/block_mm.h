#ifndef MPCQP_MATMUL_BLOCK_MM_H_
#define MPCQP_MATMUL_BLOCK_MM_H_

#include "matmul/matrix.h"
#include "mpc/cluster.h"

namespace mpcqp {

// Distributed conventional (all n^3 products) matrix multiplication in the
// MPC model (deck slides 107-126). Communication is metered in scalar
// elements: tuples = values = element count per message.
//
// Inputs start block-partitioned across servers (initial placement is not
// communication, as with relations).

// One-round rectangle-block algorithm (slides 109-110): K = floor(sqrt(p))
// row groups of A and column groups of B; server (i, j) receives row-group
// i and column-group j whole and computes its n/K × n/K output block.
// Load 2n²/K per server; total communication C = Θ(n⁴ / L).
struct OneRoundMmResult {
  Matrix c;
  int grid_dim = 0;  // K.
};
OneRoundMmResult RectangleBlockMm(Cluster& cluster, const Matrix& a,
                                  const Matrix& b);

// Multi-round square-block algorithm (slides 111-121): H × H blocking,
// the H³ block products split into H groups G_z = {(i,j,k) : j = (i+k+z)
// mod H}, each group touching every C block exactly once. With p servers,
// ceil(H³/p) compute rounds run p block products each; a final aggregation
// round combines partial sums per C block (skipped when each C block's
// partials already sit on one server, e.g. p = H²).
// Load per round 2(n/H)²; total C = Θ(n³ / sqrt(L)).
struct SquareBlockMmResult {
  Matrix c;
  int rounds = 0;  // Compute rounds + aggregation round (if any).
};
SquareBlockMmResult SquareBlockMm(Cluster& cluster, const Matrix& a,
                                  const Matrix& b, int block_dim);

}  // namespace mpcqp

#endif  // MPCQP_MATMUL_BLOCK_MM_H_
