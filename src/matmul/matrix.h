#ifndef MPCQP_MATMUL_MATRIX_H_
#define MPCQP_MATMUL_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "relation/relation.h"

namespace mpcqp {

// A dense integer matrix. Integer entries keep the simulated distributed
// algorithms exactly comparable with the serial reference (no floating-
// point drift); the MPC cost analysis is element-count based and agnostic
// to the scalar type.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  int64_t& at(int r, int c);
  int64_t at(int r, int c) const;

  // Number of scalar elements (the MM theory's communication unit).
  int64_t NumElements() const { return static_cast<int64_t>(rows_) * cols_; }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.cells_ == b.cells_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int64_t> cells_;
};

// C = A * B, conventional n^3 serial reference.
Matrix MultiplySerial(const Matrix& a, const Matrix& b);

// C += A * B into a block accumulator.
void MultiplyAccumulate(const Matrix& a, const Matrix& b, Matrix* c);

// Random matrix with entries in [0, bound).
Matrix RandomMatrix(Rng& rng, int rows, int cols, int64_t bound);

// The (rows x cols) sub-block at block coordinates (bi, bj) of an H x H
// blocking of `m` (m.rows and m.cols divisible by H).
Matrix ExtractBlock(const Matrix& m, int block_dim, int bi, int bj);

// Sparse relational view: one (i, j, v) tuple per nonzero entry — the
// slide-108 SQL formulation. Values must be non-negative (they are stored
// in unsigned tuple fields).
Relation MatrixToRelation(const Matrix& m);
Matrix RelationToMatrix(const Relation& rel, int rows, int cols);

}  // namespace mpcqp

#endif  // MPCQP_MATMUL_MATRIX_H_
