#ifndef MPCQP_MATMUL_COST_MODEL_H_
#define MPCQP_MATMUL_COST_MODEL_H_

#include <cstdint>

namespace mpcqp {

// Closed-form cost/lower-bound calculators for conventional n×n matrix
// multiplication in MPC (deck slides 122-126). All quantities are in
// scalar elements.

// One-round rectangle-block algorithm: total communication with p = K²
// servers is C = p · 2n²/K ≈ 2 n⁴ / L for load L = 2n²/K.
double RectBlockComm(int64_t n, int64_t p);

// Multi-round square-block algorithm: C = r·p·L ≈ 2 n³ / sqrt(L/2) for
// per-round load L = 2(n/H)².
double SquareBlockComm(int64_t n, int64_t load);

// Round-independent communication lower bound (Irony-Toledo-Tiskin / AGM
// with τ* = 3/2): C = Ω(n³ / sqrt(L)) — with L elements a server performs
// at most O(L^{3/2}) elementary products (slides 123-124).
double CommLowerBound(int64_t n, int64_t load);

// One-round lower bound: C = Ω(n⁴ / L) (slide 126).
double OneRoundCommLowerBound(int64_t n, int64_t load);

// Round lower bound r = Ω(max(n³/(p·L^{3/2}), log_L n)) (slide 125).
double RoundsLowerBound(int64_t n, int64_t p, int64_t load);

}  // namespace mpcqp

#endif  // MPCQP_MATMUL_COST_MODEL_H_
