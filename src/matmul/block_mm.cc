#include "matmul/block_mm.h"

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/trace.h"
#include "mpc/metrics.h"

namespace mpcqp {

OneRoundMmResult RectangleBlockMm(Cluster& cluster, const Matrix& a,
                                  const Matrix& b) {
  MPCQP_TRACE_SCOPE("rect_block_mm", "algorithm");
  MPCQP_CHECK_EQ(a.cols(), b.rows());
  MPCQP_CHECK_EQ(a.rows(), a.cols());
  MPCQP_CHECK_EQ(b.rows(), b.cols());
  const int n = a.rows();
  const int p = cluster.num_servers();
  const int grid = std::max(1, static_cast<int>(std::sqrt(
                                   static_cast<double>(p)) +
                               1e-9));

  // Initial placement (not communication): row r of A and column c of B
  // live on server floor(idx * p / n).
  const auto owner = [&](int idx) {
    return static_cast<int>(static_cast<int64_t>(idx) * p / n);
  };

  cluster.BeginRound("rectangle-block MM");
  Matrix c(n, n);
  for (int gi = 0; gi < grid; ++gi) {
    for (int gj = 0; gj < grid; ++gj) {
      const int dst = gi * grid + gj;
      const int r0 = gi * n / grid;
      const int r1 = (gi + 1) * n / grid;
      const int c0 = gj * n / grid;
      const int c1 = (gj + 1) * n / grid;

      // Meter: the server receives rows [r0, r1) of A and columns
      // [c0, c1) of B in full.
      std::map<int, int64_t> recv_from;
      for (int r = r0; r < r1; ++r) recv_from[owner(r)] += n;
      for (int col = c0; col < c1; ++col) recv_from[owner(col)] += n;
      for (const auto& [src, count] : recv_from) {
        cluster.RecordMessage(src, dst, count, count);
      }

      // Local compute: the (r1-r0) x (c1-c0) output panel.
      ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
      for (int r = r0; r < r1; ++r) {
        for (int col = c0; col < c1; ++col) {
          int64_t sum = 0;
          for (int k = 0; k < n; ++k) sum += a.at(r, k) * b.at(k, col);
          c.at(r, col) = sum;
        }
      }
    }
  }
  cluster.EndRound();
  return OneRoundMmResult{std::move(c), grid};
}

SquareBlockMmResult SquareBlockMm(Cluster& cluster, const Matrix& a,
                                  const Matrix& b, int block_dim) {
  MPCQP_CHECK_EQ(a.cols(), b.rows());
  MPCQP_CHECK_EQ(a.rows(), a.cols());
  MPCQP_CHECK_EQ(b.rows(), b.cols());
  MPCQP_TRACE_SCOPE("square_block_mm", "algorithm");
  const int n = a.rows();
  const int h = block_dim;
  MPCQP_CHECK_GE(h, 1);
  MPCQP_CHECK_EQ(n % h, 0);
  const int p = cluster.num_servers();
  const int64_t block_elems =
      static_cast<int64_t>(n / h) * (n / h);

  // Initial placement: A block (i,j) on server (i*h+j) mod p; likewise B.
  const auto a_owner = [&](int i, int j) { return (i * h + j) % p; };
  const auto b_owner = [&](int j, int k) { return (j * h + k) % p; };

  // Per-server partial sums, keyed by output block (i, k).
  std::vector<std::map<std::pair<int, int>, Matrix>> partials(p);

  const int64_t total_products = static_cast<int64_t>(h) * h * h;
  int rounds = 0;
  for (int64_t first = 0; first < total_products;
       first += p) {
    ++rounds;
    cluster.BeginRound("square-block MM: compute round " +
                       std::to_string(rounds));
    const int64_t last = std::min<int64_t>(first + p, total_products);
    for (int64_t g = first; g < last; ++g) {
      const int z = static_cast<int>(g / (h * h));
      const int w = static_cast<int>(g % (h * h));
      const int i = w / h;
      const int k = w % h;
      const int j = (i + k + z) % h;
      const int server = static_cast<int>(g % p);

      cluster.RecordMessage(a_owner(i, j), server, block_elems, block_elems);
      cluster.RecordMessage(b_owner(j, k), server, block_elems, block_elems);

      ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
      const Matrix a_block = ExtractBlock(a, h, i, j);
      const Matrix b_block = ExtractBlock(b, h, j, k);
      auto [it, inserted] =
          partials[server].try_emplace({i, k}, Matrix(n / h, n / h));
      MultiplyAccumulate(a_block, b_block, &it->second);
    }
    cluster.EndRound();
  }

  // Does any output block have partials on more than one server?
  std::map<std::pair<int, int>, std::vector<int>> holders;
  for (int s = 0; s < p; ++s) {
    for (const auto& [block, partial] : partials[s]) {
      holders[block].push_back(s);
    }
  }
  bool need_aggregation = false;
  for (const auto& [block, servers] : holders) {
    if (servers.size() > 1) need_aggregation = true;
  }

  Matrix c(n, n);
  const auto c_owner = [&](int i, int k) { return (i * h + k) % p; };
  if (need_aggregation) {
    ++rounds;
    cluster.BeginRound("square-block MM: aggregate partials");
    for (const auto& [block, servers] : holders) {
      const int dst = c_owner(block.first, block.second);
      for (int src : servers) {
        cluster.RecordMessage(src, dst, block_elems, block_elems);
      }
    }
    cluster.EndRound();
  }
  for (const auto& [block, servers] : holders) {
    const auto [i, k] = block;
    Matrix sum(n / h, n / h);
    for (int src : servers) {
      const Matrix& part = partials[src].at(block);
      for (int r = 0; r < sum.rows(); ++r) {
        for (int col = 0; col < sum.cols(); ++col) {
          sum.at(r, col) += part.at(r, col);
        }
      }
    }
    for (int r = 0; r < sum.rows(); ++r) {
      for (int col = 0; col < sum.cols(); ++col) {
        c.at(i * (n / h) + r, k * (n / h) + col) = sum.at(r, col);
      }
    }
  }
  return SquareBlockMmResult{std::move(c), rounds};
}

}  // namespace mpcqp
