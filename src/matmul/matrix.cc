#include "matmul/matrix.h"

#include "common/check.h"

namespace mpcqp {

Matrix::Matrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      cells_(static_cast<size_t>(rows) * cols, 0) {
  MPCQP_CHECK_GE(rows, 0);
  MPCQP_CHECK_GE(cols, 0);
}

int64_t& Matrix::at(int r, int c) {
  MPCQP_CHECK_GE(r, 0);
  MPCQP_CHECK_LT(r, rows_);
  MPCQP_CHECK_GE(c, 0);
  MPCQP_CHECK_LT(c, cols_);
  return cells_[static_cast<size_t>(r) * cols_ + c];
}

int64_t Matrix::at(int r, int c) const {
  MPCQP_CHECK_GE(r, 0);
  MPCQP_CHECK_LT(r, rows_);
  MPCQP_CHECK_GE(c, 0);
  MPCQP_CHECK_LT(c, cols_);
  return cells_[static_cast<size_t>(r) * cols_ + c];
}

Matrix MultiplySerial(const Matrix& a, const Matrix& b) {
  MPCQP_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  MultiplyAccumulate(a, b, &c);
  return c;
}

void MultiplyAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  MPCQP_CHECK(c != nullptr);
  MPCQP_CHECK_EQ(a.cols(), b.rows());
  MPCQP_CHECK_EQ(c->rows(), a.rows());
  MPCQP_CHECK_EQ(c->cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const int64_t aik = a.at(i, k);
      if (aik == 0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        c->at(i, j) += aik * b.at(k, j);
      }
    }
  }
}

Matrix RandomMatrix(Rng& rng, int rows, int cols, int64_t bound) {
  MPCQP_CHECK_GT(bound, 0);
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.at(r, c) = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(bound)));
    }
  }
  return m;
}

Matrix ExtractBlock(const Matrix& m, int block_dim, int bi, int bj) {
  MPCQP_CHECK_GT(block_dim, 0);
  MPCQP_CHECK_EQ(m.rows() % block_dim, 0);
  MPCQP_CHECK_EQ(m.cols() % block_dim, 0);
  const int br = m.rows() / block_dim;
  const int bc = m.cols() / block_dim;
  MPCQP_CHECK_GE(bi, 0);
  MPCQP_CHECK_LT(bi, block_dim);
  MPCQP_CHECK_GE(bj, 0);
  MPCQP_CHECK_LT(bj, block_dim);
  Matrix block(br, bc);
  for (int r = 0; r < br; ++r) {
    for (int c = 0; c < bc; ++c) {
      block.at(r, c) = m.at(bi * br + r, bj * bc + c);
    }
  }
  return block;
}

Relation MatrixToRelation(const Matrix& m) {
  Relation rel(3);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      const int64_t v = m.at(r, c);
      if (v == 0) continue;
      MPCQP_CHECK_GE(v, 0) << "relational view needs non-negative entries";
      rel.AppendRow({static_cast<Value>(r), static_cast<Value>(c),
                     static_cast<Value>(v)});
    }
  }
  return rel;
}

Matrix RelationToMatrix(const Relation& rel, int rows, int cols) {
  MPCQP_CHECK_EQ(rel.arity(), 3);
  Matrix m(rows, cols);
  for (int64_t i = 0; i < rel.size(); ++i) {
    const Value* row = rel.row(i);
    m.at(static_cast<int>(row[0]), static_cast<int>(row[1])) +=
        static_cast<int64_t>(row[2]);
  }
  return m;
}

}  // namespace mpcqp
