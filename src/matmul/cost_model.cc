#include "matmul/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mpcqp {

double RectBlockComm(int64_t n, int64_t p) {
  MPCQP_CHECK_GT(n, 0);
  MPCQP_CHECK_GT(p, 0);
  const double k = std::sqrt(static_cast<double>(p));
  return static_cast<double>(p) * 2.0 * static_cast<double>(n) *
         static_cast<double>(n) / k;
}

double SquareBlockComm(int64_t n, int64_t load) {
  MPCQP_CHECK_GT(n, 0);
  MPCQP_CHECK_GT(load, 0);
  // L = 2 (n/H)^2  =>  H = n sqrt(2/L); C = H^3 * 2 (n/H)^2 = 2 n^2 H.
  const double h = static_cast<double>(n) *
                   std::sqrt(2.0 / static_cast<double>(load));
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         std::max(1.0, h);
}

double CommLowerBound(int64_t n, int64_t load) {
  MPCQP_CHECK_GT(n, 0);
  MPCQP_CHECK_GT(load, 0);
  const double dn = static_cast<double>(n);
  return dn * dn * dn / std::sqrt(static_cast<double>(load));
}

double OneRoundCommLowerBound(int64_t n, int64_t load) {
  MPCQP_CHECK_GT(n, 0);
  MPCQP_CHECK_GT(load, 0);
  const double dn = static_cast<double>(n);
  return dn * dn * dn * dn / static_cast<double>(load);
}

double RoundsLowerBound(int64_t n, int64_t p, int64_t load) {
  MPCQP_CHECK_GT(n, 0);
  MPCQP_CHECK_GT(p, 0);
  MPCQP_CHECK_GT(load, 1);
  const double dn = static_cast<double>(n);
  const double dl = static_cast<double>(load);
  const double join_bound = dn * dn * dn / (static_cast<double>(p) *
                                            dl * std::sqrt(dl));
  const double agg_bound = std::log(dn) / std::log(dl);
  return std::max(join_bound, agg_bound);
}

}  // namespace mpcqp
