#ifndef MPCQP_MATMUL_SQL_MM_H_
#define MPCQP_MATMUL_SQL_MM_H_

#include "matmul/matrix.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// Matrix multiplication as the SQL query of deck slide 108:
//
//   SELECT A.i, B.k, SUM(A.v * B.v)
//   FROM A, B WHERE A.j = B.j GROUP BY A.i, B.k
//
// over sparse (i, j, v) relations. Two rounds: a parallel hash join on j,
// then a re-partition by (i, k) for the aggregation. The workhorse of the
// "MM is a join + group-by" connection the deck draws (and the reason the
// AGM machinery applies: τ* of the underlying join is 3/2).
//
// Result relation: (i, k, sum) with zero-sum groups dropped.
DistRelation SqlMatrixMultiply(Cluster& cluster, const DistRelation& a,
                               const DistRelation& b);

}  // namespace mpcqp

#endif  // MPCQP_MATMUL_SQL_MM_H_
