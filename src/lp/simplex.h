#ifndef MPCQP_LP_SIMPLEX_H_
#define MPCQP_LP_SIMPLEX_H_

#include <vector>

#include "common/statusor.h"

namespace mpcqp {

// A small dense linear-programming solver.
//
// Query hypergraphs are tiny (tens of variables/atoms), so an exact
// two-phase primal simplex with Bland's anti-cycling rule is simple,
// dependency-free, and fast enough for every LP in this library
// (fractional edge packing / cover, vertex cover, HyperCube shares).

enum class LpConstraintOp {
  kLessEq,
  kGreaterEq,
  kEqual,
};

struct LpConstraint {
  std::vector<double> coeffs;  // One per variable.
  LpConstraintOp op = LpConstraintOp::kLessEq;
  double rhs = 0.0;
};

enum class LpObjective {
  kMaximize,
  kMinimize,
};

// maximize/minimize objective . x  subject to the constraints and x >= 0.
struct LpProblem {
  int num_vars = 0;
  LpObjective sense = LpObjective::kMaximize;
  std::vector<double> objective;  // Size num_vars.
  std::vector<LpConstraint> constraints;
};

struct LpSolution {
  double objective_value = 0.0;
  std::vector<double> x;  // Size num_vars.
};

// Solves `problem`. Returns:
//  - the optimum on success,
//  - FAILED_PRECONDITION if infeasible,
//  - OUT_OF_RANGE if unbounded,
//  - INVALID_ARGUMENT on malformed input (dimension mismatches).
StatusOr<LpSolution> SolveLp(const LpProblem& problem);

}  // namespace mpcqp

#endif  // MPCQP_LP_SIMPLEX_H_
