#include "lp/simplex.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "common/check.h"

namespace mpcqp {

namespace {

constexpr double kEps = 1e-9;

// Dense simplex tableau. Columns: structural vars, then slack/surplus vars,
// then artificial vars, then RHS. One row per constraint plus an objective
// row (kept as the last row, in "maximize" orientation: we store z-row
// coefficients as reduced costs and pivot until none is positive).
class Tableau {
 public:
  Tableau(int rows, int cols) : rows_(rows), cols_(cols),
                                cells_(static_cast<size_t>(rows) * cols, 0.0) {}

  double& At(int r, int c) {
    return cells_[static_cast<size_t>(r) * cols_ + c];
  }
  double At(int r, int c) const {
    return cells_[static_cast<size_t>(r) * cols_ + c];
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  // Gauss-Jordan pivot on (pivot_row, pivot_col).
  void Pivot(int pivot_row, int pivot_col) {
    const double pivot = At(pivot_row, pivot_col);
    MPCQP_CHECK(std::fabs(pivot) > kEps);
    for (int c = 0; c < cols_; ++c) At(pivot_row, c) /= pivot;
    for (int r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = At(r, pivot_col);
      if (std::fabs(factor) < kEps) continue;
      for (int c = 0; c < cols_; ++c) {
        At(r, c) -= factor * At(pivot_row, c);
      }
    }
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> cells_;
};

// Runs primal simplex on `t` (objective in the last row, maximizing) over
// the allowed columns [0, usable_cols). Uses Bland's rule. Returns false if
// the LP is unbounded.
bool RunSimplex(Tableau& t, std::vector<int>& basis, int usable_cols) {
  const int m = t.rows() - 1;       // Constraint rows.
  const int obj = t.rows() - 1;     // Objective row index.
  const int rhs = t.cols() - 1;     // RHS column index.
  while (true) {
    // Bland: entering variable = smallest index with positive reduced cost.
    int enter = -1;
    for (int c = 0; c < usable_cols; ++c) {
      if (t.At(obj, c) > kEps) {
        enter = c;
        break;
      }
    }
    if (enter < 0) return true;  // Optimal.

    // Ratio test; Bland tie-break on smallest basis variable index.
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < m; ++r) {
      const double a = t.At(r, enter);
      if (a > kEps) {
        const double ratio = t.At(r, rhs) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave < 0 || basis[r] < basis[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave < 0) return false;  // Unbounded direction.

    t.Pivot(leave, enter);
    basis[leave] = enter;
  }
}

}  // namespace

StatusOr<LpSolution> SolveLp(const LpProblem& problem) {
  const int n = problem.num_vars;
  const int m = static_cast<int>(problem.constraints.size());
  if (n <= 0) return InvalidArgumentError("LP must have at least one variable");
  if (static_cast<int>(problem.objective.size()) != n) {
    return InvalidArgumentError("objective size != num_vars");
  }
  for (const LpConstraint& c : problem.constraints) {
    if (static_cast<int>(c.coeffs.size()) != n) {
      return InvalidArgumentError("constraint size != num_vars");
    }
  }

  // Normalized rows: coeffs * x (op) rhs with rhs >= 0.
  std::vector<std::vector<double>> rows(m);
  std::vector<LpConstraintOp> ops(m);
  std::vector<double> rhs(m);
  for (int i = 0; i < m; ++i) {
    rows[i] = problem.constraints[i].coeffs;
    ops[i] = problem.constraints[i].op;
    rhs[i] = problem.constraints[i].rhs;
    if (rhs[i] < 0) {
      for (double& v : rows[i]) v = -v;
      rhs[i] = -rhs[i];
      if (ops[i] == LpConstraintOp::kLessEq) {
        ops[i] = LpConstraintOp::kGreaterEq;
      } else if (ops[i] == LpConstraintOp::kGreaterEq) {
        ops[i] = LpConstraintOp::kLessEq;
      }
    }
  }

  // Column layout: [0,n) structural; slack/surplus next; artificials last.
  int num_slack = 0;
  int num_artificial = 0;
  for (int i = 0; i < m; ++i) {
    if (ops[i] != LpConstraintOp::kEqual) ++num_slack;
    if (ops[i] != LpConstraintOp::kLessEq) ++num_artificial;
  }
  const int slack_base = n;
  const int art_base = n + num_slack;
  const int total_cols = n + num_slack + num_artificial + 1;  // +RHS.
  const int rhs_col = total_cols - 1;

  Tableau t(m + 1, total_cols);
  std::vector<int> basis(m, -1);
  {
    int next_slack = slack_base;
    int next_art = art_base;
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) t.At(i, j) = rows[i][j];
      t.At(i, rhs_col) = rhs[i];
      switch (ops[i]) {
        case LpConstraintOp::kLessEq:
          t.At(i, next_slack) = 1.0;
          basis[i] = next_slack++;
          break;
        case LpConstraintOp::kGreaterEq:
          t.At(i, next_slack) = -1.0;
          ++next_slack;
          t.At(i, next_art) = 1.0;
          basis[i] = next_art++;
          break;
        case LpConstraintOp::kEqual:
          t.At(i, next_art) = 1.0;
          basis[i] = next_art++;
          break;
      }
    }
  }

  const int obj_row = m;

  if (num_artificial > 0) {
    // Phase 1: maximize -(sum of artificials). Objective row must be
    // expressed in terms of non-basic variables: add each artificial row.
    for (int c = art_base; c < art_base + num_artificial; ++c) {
      t.At(obj_row, c) = -1.0;
    }
    for (int i = 0; i < m; ++i) {
      if (basis[i] >= art_base) {
        for (int c = 0; c < total_cols; ++c) {
          t.At(obj_row, c) += t.At(i, c);
        }
      }
    }
    if (!RunSimplex(t, basis, art_base)) {
      return InternalError("phase-1 LP unbounded (should be impossible)");
    }
    // With the basic artificial rows folded into the objective row, the
    // row's RHS tracks the (non-negative) sum of artificial values; a
    // positive residue at optimality means no feasible point exists.
    if (t.At(obj_row, rhs_col) > 1e-7) {
      return FailedPreconditionError("LP infeasible");
    }
    // Drive any artificial still in the basis (at value 0) out of it.
    for (int i = 0; i < m; ++i) {
      if (basis[i] < art_base) continue;
      int pivot_col = -1;
      for (int c = 0; c < art_base; ++c) {
        if (std::fabs(t.At(i, c)) > kEps) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col >= 0) {
        t.Pivot(i, pivot_col);
        basis[i] = pivot_col;
      }
      // Else the row is redundant; the artificial stays basic at zero and
      // its column is excluded from phase 2 below.
    }
    // Reset objective row for phase 2.
    for (int c = 0; c < total_cols; ++c) t.At(obj_row, c) = 0.0;
  }

  // Phase 2 objective (in maximize orientation).
  const double sign = problem.sense == LpObjective::kMaximize ? 1.0 : -1.0;
  for (int j = 0; j < n; ++j) t.At(obj_row, j) = sign * problem.objective[j];
  // Express the objective in terms of non-basic variables.
  for (int i = 0; i < m; ++i) {
    const int b = basis[i];
    if (b < art_base) {
      const double coeff = t.At(obj_row, b);
      if (std::fabs(coeff) > kEps) {
        for (int c = 0; c < total_cols; ++c) {
          t.At(obj_row, c) -= coeff * t.At(i, c);
        }
      }
    }
  }

  if (!RunSimplex(t, basis, art_base)) {
    return OutOfRangeError("LP unbounded");
  }

  LpSolution solution;
  solution.x.assign(n, 0.0);
  for (int i = 0; i < m; ++i) {
    if (basis[i] < n) solution.x[basis[i]] = t.At(i, rhs_col);
  }
  double value = 0.0;
  for (int j = 0; j < n; ++j) value += problem.objective[j] * solution.x[j];
  solution.objective_value = value;
  return solution;
}

}  // namespace mpcqp
