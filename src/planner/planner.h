#ifndef MPCQP_PLANNER_PLANNER_H_
#define MPCQP_PLANNER_PLANNER_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "query/query.h"

namespace mpcqp {

// A cost-based chooser among the library's parallel join strategies,
// operationalizing the deck's takeaways (slides 129-131):
//
//  - skew-free inputs: the 1-round optimum is IN/p^{1/τ*} (HyperCube);
//    multi-round binary plans reach IN/p when intermediates do not grow;
//  - skewed inputs: SkewHC's residual decomposition is worst-case optimal
//    in one round;
//  - acyclic queries with small output: GYM reaches (IN+OUT)/p in O(d)
//    rounds;
//  - skew with large outputs on cyclic queries: the BiGJoin-style
//    variable-at-a-time plan bounds traffic by the true prefix counts.
//
// The planner estimates loads from cheap statistics (atom sizes, per-atom
// distinct counts, heavy-hitter presence) and charges a configurable
// fixed cost per round (the synchronization price that makes one-round
// algorithms attractive in practice).

enum class PlanAlgorithm {
  kHyperCube,
  kSkewHc,
  kBinaryPlan,
  kGym,
  kBigJoin,
};

const char* PlanAlgorithmName(PlanAlgorithm algorithm);

struct PlannerOptions {
  // λ: tuples-equivalent charge per round (0 = rounds are free, pure
  // load minimization; large = rounds dominate, one-round plans win).
  double round_cost_tuples = 0.0;
  // Heavy-hitter threshold factor over IN/p for the skew probe.
  double threshold_factor = 1.0;
  // Candidates the planner is allowed to pick from; empty = all.
  std::vector<PlanAlgorithm> allowed;
};

struct CandidatePlan {
  PlanAlgorithm algorithm = PlanAlgorithm::kHyperCube;
  double estimated_load = 0.0;  // Tuples per server.
  int estimated_rounds = 0;
  double total_cost = 0.0;      // load + λ·rounds.
  bool feasible = true;         // E.g. GYM needs acyclicity.
  std::string rationale;
};

struct PlanChoice {
  CandidatePlan chosen;
  std::vector<CandidatePlan> candidates;  // All evaluated, feasible or not.
  bool input_is_skewed = false;
};

// Inspects the data (free statistics, as the theory assumes) and ranks
// the strategies for running `q` on `atoms` over `cluster_size` servers.
PlanChoice ChoosePlan(const ConjunctiveQuery& q,
                      const std::vector<DistRelation>& atoms,
                      int cluster_size, const PlannerOptions& options = {});

// Executes the chosen algorithm. Output columns = query variables in id
// order; bag semantics except kBigJoin (set semantics — the planner only
// proposes it when inputs are duplicate-free).
DistRelation ExecutePlan(Cluster& cluster, const ConjunctiveQuery& q,
                         const std::vector<DistRelation>& atoms,
                         const PlanChoice& choice, Rng& rng);

}  // namespace mpcqp

#endif  // MPCQP_PLANNER_PLANNER_H_
