#ifndef MPCQP_PLANNER_PLANNER_H_
#define MPCQP_PLANNER_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "planner/calibration.h"
#include "planner/plan_tree.h"
#include "query/query.h"

namespace mpcqp {

class PlanCache;

// The cost-based distributed query planner, operationalizing the deck's
// takeaways (slides 129-131):
//
//  - skew-free inputs: the 1-round optimum is IN/p^{1/τ*} (HyperCube);
//    multi-round binary plans reach IN/p when intermediates do not grow;
//  - skewed inputs: SkewHC's residual decomposition is worst-case optimal
//    in one round;
//  - acyclic queries with small output: GYM reaches (IN+OUT)/p in O(d)
//    rounds;
//  - skew with large outputs on cyclic queries: the BiGJoin-style
//    variable-at-a-time plan bounds traffic by the true prefix counts.
//
// Two layers:
//  - ChoosePlan ranks the five whole-query strategies from cheap catalog
//    statistics (the original advisory ranker, kept as the macro layer);
//  - PlanQuery additionally runs a System-R-style DP over binary join
//    orders, prices every candidate with a cost model calibrated from
//    measured phase timings (see planner/calibration.h), emits an
//    executable PlanTree with exchange operators at the shuffle points,
//    and consults/fills a PlanCache keyed by canonical query shape +
//    relation statistics so repeated queries skip planning entirely.

enum class PlanAlgorithm {
  kHyperCube,
  kSkewHc,
  kBinaryPlan,
  kGym,
  kBigJoin,
};

const char* PlanAlgorithmName(PlanAlgorithm algorithm);

struct PlannerOptions {
  // λ: tuples-equivalent charge per round (0 = rounds are free, pure
  // load minimization; large = rounds dominate, one-round plans win).
  // Used whenever `cost.calibrated` is false; a calibrated cost model
  // replaces it with measured microseconds (round_overhead_us as the
  // round price).
  double round_cost_tuples = 0.0;
  // Heavy-hitter threshold factor over IN/p for the skew probe.
  double threshold_factor = 1.0;
  // Candidates the planner is allowed to pick from; empty = all.
  std::vector<PlanAlgorithm> allowed;
  // Measured per-tuple phase costs (CalibrateCostModel); when
  // `cost.calibrated` the planner prices candidates in microseconds.
  CostCoefficients cost;
  // PlanQuery only: run the join-order DP (ChoosePlan never does).
  bool enumerate_join_orders = true;
  // DP state space guard: queries with more atoms than this skip the
  // subset DP and fall back to the greedy order.
  int max_dp_atoms = 12;
};

struct CandidatePlan {
  PlanAlgorithm algorithm = PlanAlgorithm::kHyperCube;
  double estimated_load = 0.0;  // Tuples per server.
  int estimated_rounds = 0;
  double total_cost = 0.0;      // load + λ·rounds, or calibrated µs.
  bool feasible = true;         // E.g. GYM needs acyclicity.
  std::string rationale;
};

struct PlanChoice {
  CandidatePlan chosen;
  std::vector<CandidatePlan> candidates;  // All evaluated, feasible or not.
  bool input_is_skewed = false;
};

// Cheap catalog statistics (exact, as the theory assumes them free):
// per-atom sizes and per-variable distinct counts, per-variable heavy
// flags against the given threshold, and duplicate presence per atom.
struct PlannerStats {
  std::vector<int64_t> sizes;                  // Per atom.
  std::vector<std::vector<int64_t>> distinct;  // distinct[j][v] or 0.
  std::vector<bool> var_is_heavy;              // Per query variable.
  std::vector<bool> atom_has_duplicates;       // Per atom.
  int64_t total_in = 0;
};

PlannerStats GatherPlannerStats(const ConjunctiveQuery& q,
                                const std::vector<DistRelation>& atoms,
                                int64_t heavy_threshold);

// Load/rounds estimate of one whole-query strategy from the statistics
// (the macro layer's scoring; exposed for the enumerator and tests).
CandidatePlan EstimateCandidate(PlanAlgorithm algorithm,
                                const ConjunctiveQuery& q,
                                const PlannerStats& stats, int p);

// Inspects the data (free statistics, as the theory assumes) and ranks
// the strategies for running `q` on `atoms` over `cluster_size` servers.
PlanChoice ChoosePlan(const ConjunctiveQuery& q,
                      const std::vector<DistRelation>& atoms,
                      int cluster_size, const PlannerOptions& options = {});

// Executes the chosen algorithm. Output columns = query variables in id
// order; bag semantics except kBigJoin (set semantics — the planner only
// proposes it when inputs are duplicate-free).
DistRelation ExecutePlan(Cluster& cluster, const ConjunctiveQuery& q,
                         const std::vector<DistRelation>& atoms,
                         const PlanChoice& choice, Rng& rng);

// --- Full planner: DP enumeration + plan tree + cache ---

// One executable plan: the strategy family plus everything needed to run
// it. For kBinaryPlan the join order (original atom indices) and skew flag
// reproduce IterativeBinaryJoin exactly; other families dispatch to their
// whole-query driver. `tree` is the explicit operator tree (EXPLAIN,
// goldens); it is rebuilt deterministically from the fields on cache hits.
struct EnumeratedPlan {
  PlanAlgorithm family = PlanAlgorithm::kHyperCube;
  std::vector<int> join_order;  // kBinaryPlan only.
  bool skew_aware = false;      // kBinaryPlan only.
  double estimated_load = 0.0;
  int estimated_rounds = 0;
  double total_cost = 0.0;
  std::string rationale;
  // kBinaryPlan: estimated rows after each join step (len = atoms-1);
  // annotates the tree and is cached so hits rebuild identical EXPLAINs.
  std::vector<double> step_est_rows;
  PlanTree tree;
};

struct PlannedQuery {
  EnumeratedPlan plan;
  // The macro ranking that competed with the DP order (for EXPLAIN).
  std::vector<CandidatePlan> candidates;
  bool input_is_skewed = false;
  bool cache_hit = false;
  // DP states expanded while planning; 0 on a cache hit — the warm-path
  // assertion that enumeration was skipped.
  int64_t dp_states = 0;
  double planning_ms = 0.0;
};

// Plans `q` end to end: gathers statistics, scores the whole-query
// strategies, runs the join-order DP, prices everything with the options'
// cost model, and emits the winner as an executable plan tree. A non-null
// `cache` is consulted first (hit = no stats scan, no enumeration) and
// filled on miss.
PlannedQuery PlanQuery(const ConjunctiveQuery& q,
                       const std::vector<DistRelation>& atoms,
                       int cluster_size, const PlannerOptions& options = {},
                       PlanCache* cache = nullptr);

// Executes a planned query: kBinaryPlan plans walk the tree node by node
// (ExecuteJoinOrderTree); the other families dispatch to their driver.
// Output columns = query variables in id order.
DistRelation ExecutePlannedQuery(Cluster& cluster, const ConjunctiveQuery& q,
                                 const std::vector<DistRelation>& atoms,
                                 const PlannedQuery& planned, Rng& rng);

}  // namespace mpcqp

#endif  // MPCQP_PLANNER_PLANNER_H_
