#ifndef MPCQP_PLANNER_CALIBRATION_H_
#define MPCQP_PLANNER_CALIBRATION_H_

#include <cstdint>
#include <string>

namespace mpcqp {

// Measured per-tuple costs of the simulator's execution phases, the bridge
// between the enumerator's tuple counts and wall-clock. The phases match
// mpc/metrics.h: an exchange routes (destination computation + counting),
// then copies (bulk tuple movement), and each round ends in local compute
// (index build + probe). A plan's time estimate is
//
//   Σ_rounds [ route·tuples_moved + copy·values_moved
//              + local·tuples_touched + round_overhead ].
//
// With `calibrated` false the planner ignores these and falls back to the
// tuple-equivalent cost load + λ·rounds (PlannerOptions::round_cost_tuples).
struct CostCoefficients {
  double route_us_per_tuple = 0.02;
  double copy_us_per_value = 0.01;
  double local_us_per_tuple = 0.05;
  // Fixed synchronization price of one MPC round, microseconds.
  double round_overhead_us = 100.0;
  // Per-tuple cost of a single-column selection scan over wide rows, by
  // physical layout (relation/columnar.h): strided row-major reads vs a
  // gather into a contiguous key column. Diagnostics for the --layout
  // crossover (EXPERIMENTS.md E22); the enumerator's plan costs use only
  // the row-path constants above, so plan goldens are layout-independent.
  double scan_row_us_per_tuple = 0.01;
  double scan_columnar_us_per_tuple = 0.005;
  bool calibrated = false;

  std::string ToString() const;
};

// One-time calibration run: executes parallel hash joins of a few sizes
// (plus a batch of near-empty rounds for the per-round overhead) on a
// scratch Cluster with the given shape, then least-squares-fits each
// coefficient from the measured MpcMetrics phase timings against the
// CostReport tuple counts of the same rounds. Deterministic given the
// arguments up to OS timer jitter; costs well under a second.
CostCoefficients CalibrateCostModel(int num_servers, int num_threads,
                                    uint64_t seed = 0x5ca1ab1e);

}  // namespace mpcqp

#endif  // MPCQP_PLANNER_CALIBRATION_H_
