#include "planner/plan_tree.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "join/cartesian.h"
#include "join/hash_join.h"
#include "join/skew_join.h"
#include "multiway/binary_plan.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

// Distinct variables of an atom by first occurrence — the output variable
// list NormalizeAtomDist produces for it.
std::vector<int> DistinctVars(const Atom& atom) {
  std::vector<int> vars;
  for (int v : atom.vars) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  }
  return vars;
}

std::string VarList(const ConjunctiveQuery& q, const std::vector<int>& vars) {
  std::string out = "[";
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) out += ",";
    out += q.var_name(vars[i]);
  }
  return out + "]";
}

void AppendNode(const PlanTree& tree, const ConjunctiveQuery& q, int index,
                int depth, std::string& out) {
  const PlanNode& node = tree.nodes[index];
  out.append(static_cast<size_t>(depth) * 2, ' ');
  switch (node.op) {
    case PlanOp::kScan:
      out += "scan " + q.atom(node.atom).name + " " + VarList(q, node.vars);
      break;
    case PlanOp::kExchange: {
      std::vector<int> key_vars;
      for (int k : node.keys) key_vars.push_back(node.vars[k]);
      out += "exchange on " + VarList(q, key_vars);
      break;
    }
    case PlanOp::kShuffleJoin: {
      std::vector<int> key_vars;
      const PlanNode& left = tree.nodes[node.children[0]];
      for (int k : left.keys) key_vars.push_back(left.vars[k]);
      out += std::string("shuffle-join") + (node.skew_aware ? "(skew)" : "") +
             " " + VarList(q, key_vars);
      break;
    }
    case PlanOp::kProduct:
      out += "product (grid exchange)";
      break;
    case PlanOp::kAlgorithm:
      out += node.algorithm_name + "(";
      for (int j = 0; j < q.num_atoms(); ++j) {
        if (j > 0) out += ",";
        out += q.atom(j).name;
      }
      out += ")";
      break;
    case PlanOp::kProject:
      out += "project " + VarList(q, node.vars);
      break;
  }
  if (node.est_rows > 0 &&
      (node.op == PlanOp::kShuffleJoin || node.op == PlanOp::kProduct)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " est=%.0f", node.est_rows);
    out += buf;
  }
  out += "\n";
  for (int child : node.children) {
    AppendNode(tree, q, child, depth + 1, out);
  }
}

}  // namespace

std::string PlanTree::ToString(const ConjunctiveQuery& q) const {
  if (empty()) return "(empty plan)";
  std::string out;
  AppendNode(*this, q, root, 0, out);
  return out;
}

PlanTree BuildJoinOrderTree(const ConjunctiveQuery& q,
                            const std::vector<int>& order, bool skew_aware,
                            const std::vector<double>& est_rows) {
  MPCQP_CHECK_EQ(static_cast<int>(order.size()), q.num_atoms());
  PlanTree tree;
  auto add = [&](PlanNode node) {
    tree.nodes.push_back(std::move(node));
    return static_cast<int>(tree.nodes.size()) - 1;
  };

  PlanNode first;
  first.op = PlanOp::kScan;
  first.atom = order[0];
  first.vars = DistinctVars(q.atom(order[0]));
  std::vector<int> acc_vars = first.vars;
  int acc = add(std::move(first));

  for (size_t step = 1; step < order.size(); ++step) {
    const int j = order[step];
    PlanNode scan;
    scan.op = PlanOp::kScan;
    scan.atom = j;
    scan.vars = DistinctVars(q.atom(j));
    const std::vector<int> rel_vars = scan.vars;
    const int scan_index = add(std::move(scan));

    // Key columns, mirroring IterativeBinaryJoin's bookkeeping exactly.
    std::vector<int> left_keys;
    std::vector<int> right_keys;
    for (size_t c = 0; c < rel_vars.size(); ++c) {
      const auto it =
          std::find(acc_vars.begin(), acc_vars.end(), rel_vars[c]);
      if (it != acc_vars.end()) {
        left_keys.push_back(static_cast<int>(it - acc_vars.begin()));
        right_keys.push_back(static_cast<int>(c));
      }
    }

    PlanNode parent;
    if (left_keys.empty()) {
      parent.op = PlanOp::kProduct;
      parent.children = {acc, scan_index};
      for (int v : rel_vars) acc_vars.push_back(v);
    } else {
      PlanNode exchange_left;
      exchange_left.op = PlanOp::kExchange;
      exchange_left.children = {acc};
      exchange_left.vars = acc_vars;
      exchange_left.keys = left_keys;
      const int left_index = add(std::move(exchange_left));

      PlanNode exchange_right;
      exchange_right.op = PlanOp::kExchange;
      exchange_right.children = {scan_index};
      exchange_right.vars = rel_vars;
      exchange_right.keys = right_keys;
      const int right_index = add(std::move(exchange_right));

      parent.op = PlanOp::kShuffleJoin;
      parent.children = {left_index, right_index};
      parent.skew_aware = skew_aware && left_keys.size() == 1;
      for (size_t c = 0; c < rel_vars.size(); ++c) {
        if (std::find(right_keys.begin(), right_keys.end(),
                      static_cast<int>(c)) == right_keys.end()) {
          acc_vars.push_back(rel_vars[c]);
        }
      }
    }
    parent.vars = acc_vars;
    if (step - 1 < est_rows.size()) parent.est_rows = est_rows[step - 1];
    acc = add(std::move(parent));
  }

  PlanNode project;
  project.op = PlanOp::kProject;
  project.children = {acc};
  for (int v = 0; v < q.num_vars(); ++v) project.vars.push_back(v);
  tree.root = add(std::move(project));
  return tree;
}

PlanTree BuildAlgorithmTree(const ConjunctiveQuery& q,
                            const std::string& algorithm_name) {
  PlanTree tree;
  PlanNode node;
  node.op = PlanOp::kAlgorithm;
  node.algorithm_name = algorithm_name;
  for (int v = 0; v < q.num_vars(); ++v) node.vars.push_back(v);
  tree.nodes.push_back(std::move(node));
  tree.root = 0;
  return tree;
}

namespace {

DistRelation EvalNode(Cluster& cluster, const ConjunctiveQuery& q,
                      const std::vector<DistRelation>& atoms,
                      const PlanTree& tree, int index, Rng& rng) {
  const PlanNode& node = tree.nodes[index];
  switch (node.op) {
    case PlanOp::kScan:
      return NormalizeAtomDist(q.atom(node.atom), atoms[node.atom]).first;
    case PlanOp::kExchange:
      // The repartition itself runs inside the parent join driver (which
      // brackets both sides' shuffles into one metered round); this node
      // carries the key columns and feeds the child through.
      return EvalNode(cluster, q, atoms, tree, node.children[0], rng);
    case PlanOp::kShuffleJoin: {
      const DistRelation left =
          EvalNode(cluster, q, atoms, tree, node.children[0], rng);
      const DistRelation right =
          EvalNode(cluster, q, atoms, tree, node.children[1], rng);
      const std::vector<int>& left_keys = tree.nodes[node.children[0]].keys;
      const std::vector<int>& right_keys = tree.nodes[node.children[1]].keys;
      if (node.skew_aware) {
        MPCQP_CHECK_EQ(left_keys.size(), 1u);
        return SkewAwareJoin(cluster, left, right, left_keys[0],
                             right_keys[0], rng);
      }
      return ParallelHashJoin(cluster, left, right, left_keys, right_keys);
    }
    case PlanOp::kProduct: {
      const DistRelation left =
          EvalNode(cluster, q, atoms, tree, node.children[0], rng);
      const DistRelation right =
          EvalNode(cluster, q, atoms, tree, node.children[1], rng);
      return CartesianProduct(cluster, left, right, rng);
    }
    case PlanOp::kProject: {
      DistRelation acc =
          EvalNode(cluster, q, atoms, tree, node.children[0], rng);
      const std::vector<int>& acc_vars = tree.nodes[node.children[0]].vars;
      MPCQP_CHECK_EQ(acc_vars.size(), node.vars.size());
      std::vector<int> cols(node.vars.size());
      for (size_t v = 0; v < node.vars.size(); ++v) {
        const auto it =
            std::find(acc_vars.begin(), acc_vars.end(), node.vars[v]);
        MPCQP_CHECK(it != acc_vars.end());
        cols[v] = static_cast<int>(it - acc_vars.begin());
      }
      DistRelation out(static_cast<int>(cols.size()), acc.num_servers());
      for (int s = 0; s < acc.num_servers(); ++s) {
        out.fragment(s) = Project(acc.fragment(s), cols);
      }
      return out;
    }
    case PlanOp::kAlgorithm:
      MPCQP_CHECK(false) << "kAlgorithm nodes are executed by the planner's "
                            "driver dispatch, not the tree walker";
  }
  MPCQP_CHECK(false) << "unknown plan op";
  return DistRelation(1, cluster.num_servers());
}

}  // namespace

DistRelation ExecuteJoinOrderTree(Cluster& cluster, const ConjunctiveQuery& q,
                                  const std::vector<DistRelation>& atoms,
                                  const PlanTree& tree, Rng& rng) {
  MPCQP_CHECK(!tree.empty());
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  return EvalNode(cluster, q, atoms, tree, tree.root, rng);
}

}  // namespace mpcqp
