#ifndef MPCQP_PLANNER_PLAN_CACHE_H_
#define MPCQP_PLANNER_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "planner/planner.h"
#include "query/query.h"

namespace mpcqp {

// Cache of enumerated plans keyed by canonical query shape + cluster size
// + planner options, guarded by relation statistics: an entry only hits
// while the per-atom sizes match the ones it was planned against; a size
// change invalidates (drops) the entry and replans.
//
// Plans are stored in the *canonical* atom space of the shape, so any
// isomorphic query (same shape under atom reordering / variable renaming)
// hits and gets the join order remapped through its own atom permutation.
// The executable tree is rebuilt from the remapped fields on every hit —
// rebuilding is O(atoms), the savings are the stats scan and the DP.
//
// Thread-safe and sharded: the serving runtime shares one PlanCache
// across all in-flight queries, so the map is split into kNumShards
// independently locked shards (keyed by a hash of the cache key) —
// lookups for different shapes never contend. Counters aggregate across
// shards on read.
class PlanCache {
 public:
  struct Counters {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;
  };

  // Returns true and fills `plan` (remapped into q's atom space, tree
  // rebuilt) when a fresh entry matches. A stale entry (sizes changed) is
  // dropped and counted as an invalidation + miss.
  bool Lookup(const ConjunctiveQuery& q, const CanonicalQueryShape& shape,
              const std::vector<int64_t>& sizes, int p,
              const PlannerOptions& options, EnumeratedPlan* plan);

  // Stores a freshly enumerated plan (given in q's atom space) under the
  // shape's canonical space. Overwrites any existing entry for the key.
  void Insert(const ConjunctiveQuery& q, const CanonicalQueryShape& shape,
              const std::vector<int64_t>& sizes, int p,
              const PlannerOptions& options, const EnumeratedPlan& plan);

  Counters counters() const;
  int64_t size() const;
  void Clear();

 private:
  struct Entry {
    std::vector<int64_t> size_fingerprint;  // Sizes in canonical order.
    PlanAlgorithm family = PlanAlgorithm::kHyperCube;
    std::vector<int> canonical_order;  // kBinaryPlan: canonical atom ids.
    bool skew_aware = false;
    double estimated_load = 0.0;
    int estimated_rounds = 0;
    double total_cost = 0.0;
    std::string rationale;
    std::vector<double> step_est_rows;
  };

  static constexpr int kNumShards = 8;

  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, Entry> entries;
    Counters counters;
  };

  Shard& ShardFor(const std::string& key);

  Shard shards_[kNumShards];
};

}  // namespace mpcqp

#endif  // MPCQP_PLANNER_PLAN_CACHE_H_
