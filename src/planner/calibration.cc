#include "planner/calibration.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "common/thread_pool.h"
#include "join/hash_join.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "mpc/metrics.h"
#include "relation/columnar.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {

std::string CostCoefficients::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "route %.4f us/tuple, copy %.4f us/value, local %.4f "
                "us/tuple, round overhead %.1f us, scan row %.4f / "
                "columnar %.4f us/tuple%s",
                route_us_per_tuple, copy_us_per_value, local_us_per_tuple,
                round_overhead_us, scan_row_us_per_tuple,
                scan_columnar_us_per_tuple,
                calibrated ? "" : " (uncalibrated)");
  return buf;
}

namespace {

// Accumulates (work, micros) samples and fits micros = coeff * work by
// least squares through the origin.
struct Fit {
  double sum_xy = 0;
  double sum_xx = 0;

  void Add(double work, double micros) {
    sum_xy += work * micros;
    sum_xx += work * work;
  }
  // Clamped below: a sub-timer-resolution phase must not calibrate to a
  // zero coefficient (that would make the planner treat the phase as free).
  double Coefficient(double floor) const {
    return std::max(floor, sum_xx > 0 ? sum_xy / sum_xx : 0.0);
  }
};

}  // namespace

CostCoefficients CalibrateCostModel(int num_servers, int num_threads,
                                    uint64_t seed) {
  MPCQP_CHECK_GE(num_servers, 1);
  MPCQP_CHECK_GE(num_threads, 1);
  ClusterOptions cluster_options;
  cluster_options.num_threads = num_threads;

  Fit route_fit;
  Fit copy_fit;
  Fit local_fit;
  Rng rng(seed);

  // Shuffle + local-join rounds at two sizes so the fit sees a slope, not
  // a single point; two repetitions each to average scheduler noise.
  for (const int64_t rows : {20000, 60000}) {
    const Relation left = GenerateUniform(rng, rows, 2, rows / 2);
    const Relation right = GenerateUniform(rng, rows, 2, rows / 2);
    for (int rep = 0; rep < 2; ++rep) {
      Cluster cluster(num_servers, seed + rep, cluster_options);
      const DistRelation out = ParallelHashJoin(
          cluster, DistRelation::Scatter(left, num_servers),
          DistRelation::Scatter(right, num_servers), {0}, {0});
      const auto& rounds = cluster.cost_report().rounds();
      const auto& timings = cluster.metrics().rounds();
      MPCQP_CHECK_EQ(rounds.size(), timings.size());
      int64_t tuples_moved = 0;
      int64_t values_moved = 0;
      double route_ms = 0;
      double copy_ms = 0;
      double local_ms = 0;
      for (size_t r = 0; r < rounds.size(); ++r) {
        tuples_moved += rounds[r].TotalTuplesReceived();
        values_moved += rounds[r].TotalValuesReceived();
        route_ms += timings[r].phase_ms[static_cast<int>(Phase::kRoute)] +
                    timings[r].phase_ms[static_cast<int>(Phase::kCount)];
        copy_ms += timings[r].phase_ms[static_cast<int>(Phase::kCopy)];
        local_ms +=
            timings[r].phase_ms[static_cast<int>(Phase::kLocalCompute)];
      }
      // The per-server local joins run after the metered round closes.
      local_ms +=
          cluster.metrics().outside_phase_ms(Phase::kLocalCompute);
      route_fit.Add(static_cast<double>(tuples_moved), route_ms * 1e3);
      copy_fit.Add(static_cast<double>(values_moved), copy_ms * 1e3);
      local_fit.Add(
          static_cast<double>(tuples_moved + out.TotalSize()),
          local_ms * 1e3);
    }
  }

  // Scan constants: the same single-column range selection over wide rows,
  // timed through both physical layouts (forced, so the fit does not
  // depend on the kAuto thresholds). Outputs are identical by the layout
  // determinism contract; only the memory access pattern differs.
  Fit scan_row_fit;
  Fit scan_columnar_fit;
  {
    ThreadPool pool(num_threads);
    constexpr int kScanArity = 12;
    for (const int64_t rows : {20000, 60000}) {
      const Relation wide = GenerateUniform(rng, rows, kScanArity, rows);
      for (int rep = 0; rep < 2; ++rep) {
        for (const LayoutMode layout :
             {LayoutMode::kRow, LayoutMode::kColumnar}) {
          const auto start = std::chrono::steady_clock::now();
          const std::vector<int64_t> hits = SelectRange(
              wide, 0, 0, static_cast<Value>(rows / 2), &pool, 8192, layout);
          const double us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count();
          MPCQP_CHECK_LE(static_cast<int64_t>(hits.size()), rows);
          (layout == LayoutMode::kRow ? scan_row_fit : scan_columnar_fit)
              .Add(static_cast<double>(rows), us);
        }
      }
    }
  }

  // Round overhead: near-empty exchanges isolate the fixed per-round price
  // (pool fan-out, offset pass, metering) from the per-tuple terms.
  double overhead_ms = 0;
  int overhead_rounds = 0;
  {
    const Relation tiny = GenerateUniform(rng, 8, 2, 8);
    Cluster cluster(num_servers, seed + 7, cluster_options);
    const DistRelation dist = DistRelation::Scatter(tiny, num_servers);
    const HashFunction hash = cluster.NewHashFunction();
    for (int rep = 0; rep < 8; ++rep) {
      HashPartition(cluster, dist, {0}, hash, "calibration: overhead");
    }
    for (const auto& timing : cluster.metrics().rounds()) {
      overhead_ms += timing.wall_ms;
      ++overhead_rounds;
    }
  }

  CostCoefficients coefficients;
  coefficients.route_us_per_tuple = route_fit.Coefficient(1e-4);
  coefficients.copy_us_per_value = copy_fit.Coefficient(1e-4);
  coefficients.local_us_per_tuple = local_fit.Coefficient(1e-4);
  coefficients.scan_row_us_per_tuple = scan_row_fit.Coefficient(1e-4);
  coefficients.scan_columnar_us_per_tuple =
      scan_columnar_fit.Coefficient(1e-4);
  coefficients.round_overhead_us = std::max(
      1.0, overhead_rounds > 0 ? overhead_ms * 1e3 / overhead_rounds : 0.0);
  coefficients.calibrated = true;
  return coefficients;
}

}  // namespace mpcqp
