#include "planner/planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>

#include "acyclic/gym.h"
#include "common/check.h"
#include "join/heavy_hitters.h"
#include "multiway/bigjoin.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "multiway/join_order.h"
#include "multiway/shares.h"
#include "multiway/skew_hc.h"
#include "planner/enumerator.h"
#include "planner/plan_cache.h"
#include "query/ghd.h"
#include "query/hypergraph_lp.h"
#include "relation/relation_ops.h"

namespace mpcqp {

const char* PlanAlgorithmName(PlanAlgorithm algorithm) {
  switch (algorithm) {
    case PlanAlgorithm::kHyperCube:
      return "hypercube";
    case PlanAlgorithm::kSkewHc:
      return "skew-hc";
    case PlanAlgorithm::kBinaryPlan:
      return "binary-plan";
    case PlanAlgorithm::kGym:
      return "gym";
    case PlanAlgorithm::kBigJoin:
      return "bigjoin";
  }
  return "unknown";
}

namespace {

// First-occurrence column of each distinct variable of an atom.
std::vector<std::pair<int, int>> DistinctVarCols(const Atom& atom) {
  std::vector<std::pair<int, int>> var_cols;
  for (int c = 0; c < atom.arity(); ++c) {
    const int v = atom.vars[c];
    bool first = true;
    for (int d = 0; d < c; ++d) {
      if (atom.vars[d] == v) first = false;
    }
    if (first) var_cols.push_back({v, c});
  }
  return var_cols;
}

}  // namespace

PlannerStats GatherPlannerStats(const ConjunctiveQuery& q,
                                const std::vector<DistRelation>& atoms,
                                int64_t heavy_threshold) {
  PlannerStats stats;
  stats.distinct.assign(q.num_atoms(),
                        std::vector<int64_t>(q.num_vars(), 0));
  stats.var_is_heavy.assign(q.num_vars(), false);
  for (int j = 0; j < q.num_atoms(); ++j) {
    const int64_t size = atoms[j].TotalSize();
    stats.sizes.push_back(size);
    stats.total_in += size;
    const Relation whole = atoms[j].Collect();
    stats.atom_has_duplicates.push_back(Dedup(whole).size() != whole.size());
    for (const auto& [v, c] : DistinctVarCols(q.atom(j))) {
      const Relation degrees = DegreeCount(whole, c);
      stats.distinct[j][v] = degrees.size();
      for (int64_t i = 0; i < degrees.size(); ++i) {
        if (static_cast<int64_t>(degrees.at(i, 1)) > heavy_threshold) {
          stats.var_is_heavy[v] = true;
        }
      }
    }
  }
  return stats;
}

namespace {

// Estimated tuples a server receives under HyperCube with given shares:
// Σ_j size_j / Π_{v ∈ vars(j)} shares_v.
double HyperCubeLoadForShares(const ConjunctiveQuery& q,
                              const std::vector<int64_t>& sizes,
                              const std::vector<int>& shares) {
  double total = 0.0;
  for (int j = 0; j < q.num_atoms(); ++j) {
    double denom = 1.0;
    for (const auto& [v, c] : DistinctVarCols(q.atom(j))) denom *= shares[v];
    total += static_cast<double>(sizes[j]) / denom;
  }
  return total;
}

CandidatePlan EstimateHyperCube(const ConjunctiveQuery& q,
                                const PlannerStats& stats, int p) {
  CandidatePlan plan;
  plan.algorithm = PlanAlgorithm::kHyperCube;
  plan.estimated_rounds = 1;
  const IntegerShares shares = ComputeShares(q, stats.sizes, p);
  plan.estimated_load = HyperCubeLoadForShares(q, stats.sizes, shares.shares);
  plan.rationale = "1 round at ~IN/p^{1/tau*} replication";
  // Skew penalty: a heavy value's tuples collapse their dimension.
  for (int v = 0; v < q.num_vars(); ++v) {
    if (stats.var_is_heavy[v] && shares.shares[v] > 1) {
      plan.estimated_load *= shares.shares[v];
      plan.rationale += "; skewed " + q.var_name(v) +
                        " collapses a grid dimension";
      break;
    }
  }
  return plan;
}

CandidatePlan EstimateSkewHc(const ConjunctiveQuery& q,
                             const PlannerStats& stats, int p) {
  CandidatePlan plan;
  plan.algorithm = PlanAlgorithm::kSkewHc;
  plan.estimated_rounds = 1;
  // ψ*: the worst residual's load over heavy/light combos of the heavy-
  // capable variables (class sizes approximated by the full sizes).
  uint32_t heavy_mask = 0;
  for (int v = 0; v < q.num_vars(); ++v) {
    if (stats.var_is_heavy[v]) heavy_mask |= (1u << v);
  }
  double worst = 0.0;
  for (uint32_t combo = heavy_mask;; combo = (combo - 1) & heavy_mask) {
    // Residual over light vars.
    std::vector<int> light;
    for (int v = 0; v < q.num_vars(); ++v) {
      if ((combo & (1u << v)) == 0) light.push_back(v);
    }
    if (!light.empty()) {
      std::vector<int> index(q.num_vars(), -1);
      std::vector<std::string> names;
      for (size_t i = 0; i < light.size(); ++i) {
        index[light[i]] = static_cast<int>(i);
        names.push_back(q.var_name(light[i]));
      }
      std::vector<Atom> residual_atoms;
      std::vector<int64_t> residual_sizes;
      for (int j = 0; j < q.num_atoms(); ++j) {
        Atom atom;
        atom.name = q.atom(j).name;
        for (const auto& [v, c] : DistinctVarCols(q.atom(j))) {
          if (index[v] >= 0) atom.vars.push_back(index[v]);
        }
        if (!atom.vars.empty()) {
          residual_atoms.push_back(std::move(atom));
          residual_sizes.push_back(stats.sizes[j]);
        }
      }
      if (!residual_atoms.empty()) {
        const ConjunctiveQuery residual =
            ConjunctiveQuery::Make(names, residual_atoms);
        const IntegerShares shares =
            ComputeShares(residual, residual_sizes, p);
        // Map shares back and account every atom (filters broadcast).
        std::vector<int> full_shares(q.num_vars(), 1);
        for (size_t i = 0; i < light.size(); ++i) {
          full_shares[light[i]] = shares.shares[i];
        }
        worst = std::max(
            worst, HyperCubeLoadForShares(q, stats.sizes, full_shares));
      }
    }
    if (combo == 0) break;
  }
  plan.estimated_load = worst;
  plan.rationale = "1 round, residual decomposition (worst combo bound)";
  return plan;
}

// Expected number of matches in atom j for one binding of `var`.
double AvgCandidates(const PlannerStats& stats, int j, int v) {
  const int64_t d = std::max<int64_t>(1, stats.distinct[j][v]);
  return static_cast<double>(stats.sizes[j]) / static_cast<double>(d);
}

CandidatePlan EstimateBinaryPlan(const ConjunctiveQuery& q,
                                 const PlannerStats& stats, int p) {
  CandidatePlan plan;
  plan.algorithm = PlanAlgorithm::kBinaryPlan;
  plan.estimated_rounds = q.num_atoms() - 1;
  // Cascade with independence assumptions: joining the next atom on its
  // shared vars multiplies by size_j / Π_v distinct_j(v).
  std::set<int> bound(q.atom(0).vars.begin(), q.atom(0).vars.end());
  double acc = static_cast<double>(stats.sizes[0]);
  double worst_shuffle = acc;
  for (int j = 1; j < q.num_atoms(); ++j) {
    double factor = static_cast<double>(stats.sizes[j]);
    for (const auto& [v, c] : DistinctVarCols(q.atom(j))) {
      if (bound.count(v) > 0) {
        factor /= std::max<int64_t>(1, stats.distinct[j][v]);
      }
      bound.insert(v);
    }
    worst_shuffle = std::max(
        worst_shuffle, acc + static_cast<double>(stats.sizes[j]));
    acc *= factor;
    worst_shuffle = std::max(worst_shuffle, acc);
  }
  plan.estimated_load = worst_shuffle / p;
  plan.rationale = std::to_string(q.num_atoms() - 1) +
                   " rounds; max estimated intermediate " +
                   std::to_string(static_cast<int64_t>(worst_shuffle));
  return plan;
}

CandidatePlan EstimateGym(const ConjunctiveQuery& q,
                          const PlannerStats& stats, int p) {
  CandidatePlan plan;
  plan.algorithm = PlanAlgorithm::kGym;
  if (!IsAcyclic(q)) {
    plan.feasible = false;
    plan.rationale = "query is cyclic";
    return plan;
  }
  const auto tree = BuildJoinTree(q);
  MPCQP_CHECK(tree.ok());
  // Optimized GYM: <= 2 rounds per level up + 1 per level down + 1 join.
  plan.estimated_rounds = 3 * tree->depth() + 1;
  // OUT estimate via the binary cascade (post-reduction intermediates are
  // bounded by OUT, so load ~ (IN + OUT)/p).
  const CandidatePlan cascade = EstimateBinaryPlan(q, stats, p);
  plan.estimated_load =
      static_cast<double>(stats.total_in) / p + cascade.estimated_load;
  plan.rationale = "acyclic; (IN+OUT)/p with OUT estimate";
  return plan;
}

CandidatePlan EstimateBigJoin(const ConjunctiveQuery& q,
                              const PlannerStats& stats, int p) {
  CandidatePlan plan;
  plan.algorithm = PlanAlgorithm::kBigJoin;
  for (int j = 0; j < q.num_atoms(); ++j) {
    if (stats.atom_has_duplicates[j]) {
      plan.feasible = false;
      plan.rationale = "set semantics; atom " + q.atom(j).name +
                       " has duplicate tuples";
      return plan;
    }
  }
  // Prefix cascade with the min-count proposer: each variable multiplies
  // the prefix count by the smallest average candidate count among its
  // atoms (capped below at 1 per the pruning filters).
  double prefixes = 1.0;
  double worst = 0.0;
  std::set<int> bound;
  int rounds = 0;
  for (int v = 0; v < q.num_vars(); ++v) {
    double best_factor = -1.0;
    int involved = 0;
    for (int j = 0; j < q.num_atoms(); ++j) {
      if (!q.atom(j).ContainsVar(v)) continue;
      ++involved;
      const double factor = AvgCandidates(stats, j, v);
      if (best_factor < 0 || factor < best_factor) best_factor = factor;
    }
    MPCQP_CHECK_GT(involved, 0);
    prefixes *= std::max(1.0, best_factor);
    worst = std::max(worst, prefixes);
    rounds += bound.empty() ? 1 + (involved - 1)
                            : 3 + involved;  // count+argmin+extend+filters.
    bound.insert(v);
  }
  plan.estimated_rounds = rounds;
  plan.estimated_load =
      (static_cast<double>(stats.total_in) + worst) / p;
  plan.rationale = "var-at-a-time; min-count proposer bounds prefixes";
  return plan;
}

int64_t HeavyThreshold(const std::vector<DistRelation>& atoms, int p,
                       double threshold_factor) {
  int64_t total_in = 0;
  for (const DistRelation& a : atoms) total_in += a.TotalSize();
  return std::max<int64_t>(
      1, static_cast<int64_t>(threshold_factor *
                              static_cast<double>(total_in) / p));
}

}  // namespace

CandidatePlan EstimateCandidate(PlanAlgorithm algorithm,
                                const ConjunctiveQuery& q,
                                const PlannerStats& stats, int p) {
  switch (algorithm) {
    case PlanAlgorithm::kHyperCube:
      return EstimateHyperCube(q, stats, p);
    case PlanAlgorithm::kSkewHc:
      return EstimateSkewHc(q, stats, p);
    case PlanAlgorithm::kBinaryPlan:
      return EstimateBinaryPlan(q, stats, p);
    case PlanAlgorithm::kGym:
      return EstimateGym(q, stats, p);
    case PlanAlgorithm::kBigJoin:
      return EstimateBigJoin(q, stats, p);
  }
  MPCQP_CHECK(false) << "unknown algorithm";
  return CandidatePlan();
}

PlanChoice ChoosePlan(const ConjunctiveQuery& q,
                      const std::vector<DistRelation>& atoms,
                      int cluster_size, const PlannerOptions& options) {
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  MPCQP_CHECK_GE(cluster_size, 1);
  const int p = cluster_size;

  const int64_t threshold =
      HeavyThreshold(atoms, p, options.threshold_factor);
  const PlannerStats stats = GatherPlannerStats(q, atoms, threshold);

  PlanChoice choice;
  for (bool heavy : stats.var_is_heavy) {
    if (heavy) choice.input_is_skewed = true;
  }

  std::vector<PlanAlgorithm> allowed = options.allowed;
  if (allowed.empty()) {
    allowed = {PlanAlgorithm::kHyperCube, PlanAlgorithm::kSkewHc,
               PlanAlgorithm::kBinaryPlan, PlanAlgorithm::kGym,
               PlanAlgorithm::kBigJoin};
  }
  for (const PlanAlgorithm algorithm : allowed) {
    CandidatePlan plan = EstimateCandidate(algorithm, q, stats, p);
    plan.total_cost = PriceCandidate(plan.estimated_load,
                                     plan.estimated_rounds, q, options);
    choice.candidates.push_back(std::move(plan));
  }

  const CandidatePlan* best = nullptr;
  for (const CandidatePlan& plan : choice.candidates) {
    if (!plan.feasible) continue;
    if (best == nullptr || plan.total_cost < best->total_cost ||
        (plan.total_cost == best->total_cost &&
         plan.estimated_rounds < best->estimated_rounds)) {
      best = &plan;
    }
  }
  MPCQP_CHECK(best != nullptr);
  choice.chosen = *best;
  return choice;
}

DistRelation ExecutePlan(Cluster& cluster, const ConjunctiveQuery& q,
                         const std::vector<DistRelation>& atoms,
                         const PlanChoice& choice, Rng& rng) {
  switch (choice.chosen.algorithm) {
    case PlanAlgorithm::kHyperCube:
      return HyperCubeJoin(cluster, q, atoms).output;
    case PlanAlgorithm::kSkewHc:
      return SkewHcJoin(cluster, q, atoms).output;
    case PlanAlgorithm::kBinaryPlan: {
      BinaryPlanOptions options;
      options.skew_aware = choice.input_is_skewed;
      options.order = GreedyJoinOrder(q, atoms);
      return IterativeBinaryJoin(cluster, q, atoms, rng, options).output;
    }
    case PlanAlgorithm::kGym: {
      const auto tree = BuildJoinTree(q);
      MPCQP_CHECK(tree.ok());
      GymOptions options;
      options.optimized = true;
      return GymJoin(cluster, q, *tree, atoms, rng, options).output;
    }
    case PlanAlgorithm::kBigJoin:
      return BigJoin(cluster, q, atoms).output;
  }
  MPCQP_CHECK(false) << "unknown algorithm";
  return DistRelation(q.num_vars(), cluster.num_servers());
}

PlannedQuery PlanQuery(const ConjunctiveQuery& q,
                       const std::vector<DistRelation>& atoms,
                       int cluster_size, const PlannerOptions& options,
                       PlanCache* cache) {
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  MPCQP_CHECK_GE(cluster_size, 1);
  const auto start = std::chrono::steady_clock::now();
  const int p = cluster_size;

  PlannedQuery out;
  std::vector<int64_t> sizes;
  for (const DistRelation& a : atoms) sizes.push_back(a.TotalSize());

  CanonicalQueryShape shape;
  if (cache != nullptr) {
    // Shape + sizes are the cheap part of planning; a hit skips the stats
    // scan (Collect + degree counts) and the enumeration entirely.
    shape = CanonicalizeShape(q);
    if (cache->Lookup(q, shape, sizes, p, options, &out.plan)) {
      out.cache_hit = true;
      out.planning_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      return out;
    }
  }

  const int64_t threshold =
      HeavyThreshold(atoms, p, options.threshold_factor);
  const PlannerStats stats = GatherPlannerStats(q, atoms, threshold);
  EnumerationResult enumerated = EnumeratePlans(q, stats, p, options);
  out.plan = std::move(enumerated.best);
  out.candidates = std::move(enumerated.candidates);
  out.input_is_skewed = enumerated.input_is_skewed;
  out.dp_states = enumerated.dp_states;

  if (cache != nullptr) {
    cache->Insert(q, shape, sizes, p, options, out.plan);
  }
  out.planning_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return out;
}

DistRelation ExecutePlannedQuery(Cluster& cluster, const ConjunctiveQuery& q,
                                 const std::vector<DistRelation>& atoms,
                                 const PlannedQuery& planned, Rng& rng) {
  cluster.metrics().RecordPlanning(planned.planning_ms, planned.cache_hit);
  switch (planned.plan.family) {
    case PlanAlgorithm::kHyperCube:
      return HyperCubeJoin(cluster, q, atoms).output;
    case PlanAlgorithm::kSkewHc:
      return SkewHcJoin(cluster, q, atoms).output;
    case PlanAlgorithm::kBinaryPlan:
      // Walk the explicit tree; bit-identical to IterativeBinaryJoin with
      // the same order and skew flag (shared data path).
      return ExecuteJoinOrderTree(cluster, q, atoms, planned.plan.tree, rng);
    case PlanAlgorithm::kGym: {
      const auto tree = BuildJoinTree(q);
      MPCQP_CHECK(tree.ok());
      GymOptions options;
      options.optimized = true;
      return GymJoin(cluster, q, *tree, atoms, rng, options).output;
    }
    case PlanAlgorithm::kBigJoin:
      return BigJoin(cluster, q, atoms).output;
  }
  MPCQP_CHECK(false) << "unknown algorithm";
  return DistRelation(q.num_vars(), cluster.num_servers());
}

}  // namespace mpcqp
