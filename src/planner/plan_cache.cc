#include "planner/plan_cache.h"

#include <cstdio>
#include <functional>

#include "common/check.h"
#include "planner/plan_tree.h"

namespace mpcqp {

namespace {

// The cache key: canonical shape, cluster size, and every option that can
// change the winning plan. Two planner configurations never share entries.
std::string CacheKey(const CanonicalQueryShape& shape, int p,
                     const PlannerOptions& options) {
  std::string key = shape.shape;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "|p=%d|l=%.9g|t=%.9g|e=%d|d=%d", p,
                options.round_cost_tuples, options.threshold_factor,
                options.enumerate_join_orders ? 1 : 0, options.max_dp_atoms);
  key += buf;
  key += "|a=";
  for (const PlanAlgorithm a : options.allowed) {
    key += std::to_string(static_cast<int>(a));
    key += ",";
  }
  if (options.cost.calibrated) {
    std::snprintf(buf, sizeof(buf), "|c=%.9g,%.9g,%.9g,%.9g",
                  options.cost.route_us_per_tuple,
                  options.cost.copy_us_per_value,
                  options.cost.local_us_per_tuple,
                  options.cost.round_overhead_us);
    key += buf;
  }
  return key;
}

std::vector<int64_t> CanonicalSizes(const CanonicalQueryShape& shape,
                                    const std::vector<int64_t>& sizes) {
  std::vector<int64_t> out(sizes.size());
  for (size_t k = 0; k < shape.atom_order.size(); ++k) {
    out[k] = sizes[shape.atom_order[k]];
  }
  return out;
}

}  // namespace

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

bool PlanCache::Lookup(const ConjunctiveQuery& q,
                       const CanonicalQueryShape& shape,
                       const std::vector<int64_t>& sizes, int p,
                       const PlannerOptions& options, EnumeratedPlan* plan) {
  MPCQP_CHECK(plan != nullptr);
  const std::string key = CacheKey(shape, p, options);
  const std::vector<int64_t> fingerprint = CanonicalSizes(shape, sizes);

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.counters.misses;
    return false;
  }
  if (it->second.size_fingerprint != fingerprint) {
    // Statistics changed under the same shape: the cached order may now
    // be arbitrarily bad. Drop it and replan.
    shard.entries.erase(it);
    ++shard.counters.invalidations;
    ++shard.counters.misses;
    return false;
  }
  const Entry& entry = it->second;
  plan->family = entry.family;
  plan->skew_aware = entry.skew_aware;
  plan->estimated_load = entry.estimated_load;
  plan->estimated_rounds = entry.estimated_rounds;
  plan->total_cost = entry.total_cost;
  plan->rationale = entry.rationale;
  plan->step_est_rows = entry.step_est_rows;
  plan->join_order.clear();
  if (entry.family == PlanAlgorithm::kBinaryPlan) {
    // canonical atom k of the shape is original atom atom_order[k].
    for (const int k : entry.canonical_order) {
      plan->join_order.push_back(shape.atom_order[k]);
    }
    plan->tree = BuildJoinOrderTree(q, plan->join_order, plan->skew_aware,
                                    plan->step_est_rows);
  } else {
    plan->tree = BuildAlgorithmTree(q, PlanAlgorithmName(entry.family));
  }
  ++shard.counters.hits;
  return true;
}

void PlanCache::Insert(const ConjunctiveQuery& q,
                       const CanonicalQueryShape& shape,
                       const std::vector<int64_t>& sizes, int p,
                       const PlannerOptions& options,
                       const EnumeratedPlan& plan) {
  Entry entry;
  entry.size_fingerprint = CanonicalSizes(shape, sizes);
  entry.family = plan.family;
  entry.skew_aware = plan.skew_aware;
  entry.estimated_load = plan.estimated_load;
  entry.estimated_rounds = plan.estimated_rounds;
  entry.total_cost = plan.total_cost;
  entry.rationale = plan.rationale;
  entry.step_est_rows = plan.step_est_rows;
  if (plan.family == PlanAlgorithm::kBinaryPlan) {
    // Invert atom_order: original atom j sits at canonical position inv[j].
    std::vector<int> inverse(shape.atom_order.size(), 0);
    for (size_t k = 0; k < shape.atom_order.size(); ++k) {
      inverse[shape.atom_order[k]] = static_cast<int>(k);
    }
    for (const int j : plan.join_order) {
      entry.canonical_order.push_back(inverse[j]);
    }
  }
  (void)q;

  const std::string key = CacheKey(shape, p, options);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.entries[key] = std::move(entry);
}

PlanCache::Counters PlanCache::counters() const {
  Counters total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.counters.hits;
    total.misses += shard.counters.misses;
    total.invalidations += shard.counters.invalidations;
  }
  return total;
}

int64_t PlanCache::size() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += static_cast<int64_t>(shard.entries.size());
  }
  return total;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
    shard.counters = Counters();
  }
}

}  // namespace mpcqp
