#ifndef MPCQP_PLANNER_ENUMERATOR_H_
#define MPCQP_PLANNER_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "planner/planner.h"
#include "query/query.h"

namespace mpcqp {

// Prices a (load, rounds) estimate under the options' cost model:
// uncalibrated = load + λ·rounds (tuple-equivalents, the original advisory
// metric); calibrated = microseconds from the measured per-tuple phase
// coefficients. Both are monotone in load at fixed rounds, so the DP can
// minimize the bottleneck load and stay optimal under either model.
double PriceCandidate(double load, int rounds, const ConjunctiveQuery& q,
                      const PlannerOptions& options);

// Canonical cardinality estimate for the join of the atoms in `mask`
// (bit j = atom j): the independence cascade applied in ascending atom
// index order. Fixing the order makes the estimate a function of the set,
// not the path the DP took to reach it.
double EstimateMaskRows(const ConjunctiveQuery& q, const PlannerStats& stats,
                        uint32_t mask);

struct EnumerationResult {
  EnumeratedPlan best;
  // The whole-query strategies' scores; the kBinaryPlan entry reflects
  // the best enumerated order, not the identity cascade.
  std::vector<CandidatePlan> candidates;
  bool input_is_skewed = false;
  // (mask, atom) transitions the enumerator expanded; 0 means planning
  // was skipped entirely (cache hit).
  int64_t dp_states = 0;
};

// The enumeration layer: scores every allowed whole-query strategy, runs
// a System-R-style subset DP over left-deep binary join orders (greedy
// fallback past options.max_dp_atoms), prices everything under the same
// cost model, and returns the winner as an executable plan tree.
EnumerationResult EnumeratePlans(const ConjunctiveQuery& q,
                                 const PlannerStats& stats, int p,
                                 const PlannerOptions& options);

}  // namespace mpcqp

#endif  // MPCQP_PLANNER_ENUMERATOR_H_
