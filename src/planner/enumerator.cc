#include "planner/enumerator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "planner/plan_tree.h"

namespace mpcqp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Distinct variables of an atom by first occurrence.
std::vector<int> DistinctVarsOf(const Atom& atom) {
  std::vector<int> vars;
  for (int v : atom.vars) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  }
  return vars;
}

}  // namespace

double PriceCandidate(double load, int rounds, const ConjunctiveQuery& q,
                      const PlannerOptions& options) {
  if (!options.cost.calibrated) {
    return load + options.round_cost_tuples * rounds;
  }
  double avg_width = 0.0;
  for (int j = 0; j < q.num_atoms(); ++j) {
    avg_width += q.atom(j).arity();
  }
  avg_width /= std::max(1, q.num_atoms());
  const CostCoefficients& c = options.cost;
  // Every tuple of the load is routed once, copied once (width values)
  // and touched by the local build/probe.
  return load * (c.route_us_per_tuple + c.copy_us_per_value * avg_width +
                 c.local_us_per_tuple) +
         c.round_overhead_us * rounds;
}

double EstimateMaskRows(const ConjunctiveQuery& q, const PlannerStats& stats,
                        uint32_t mask) {
  double rows = 0.0;
  bool first = true;
  // Join selectivity on v divides by max(d_left(v), d_right(v)) — the
  // containment-of-value-sets estimate. seen[v] carries the running max
  // distinct count of v over the atoms already folded in; atoms are always
  // folded in ascending index order so the result depends only on `mask`.
  std::vector<int64_t> seen(q.num_vars(), 0);
  for (int j = 0; j < q.num_atoms(); ++j) {
    if ((mask >> j & 1u) == 0) continue;
    if (first) {
      rows = static_cast<double>(stats.sizes[j]);
      first = false;
      for (int v : DistinctVarsOf(q.atom(j))) {
        seen[v] = std::max<int64_t>(1, stats.distinct[j][v]);
      }
      continue;
    }
    double factor = static_cast<double>(stats.sizes[j]);
    for (int v : DistinctVarsOf(q.atom(j))) {
      const int64_t mine = std::max<int64_t>(1, stats.distinct[j][v]);
      if (seen[v] > 0) {
        factor /= static_cast<double>(std::max(seen[v], mine));
      }
      seen[v] = std::max(seen[v], mine);
    }
    rows *= factor;
  }
  return rows;
}

namespace {

// Per-step cost of extending the accumulated join (rows_before tuples,
// variables var_mask) with atom j. Returns the step's bottleneck in
// tuple-equivalents: the larger of the tuples moved by the shuffle and the
// intermediate produced. Products pay the Cartesian grid's replication,
// ~2·sqrt(|L|·|R|·p) tuples moved at the optimal grid shape.
double StepBottleneck(double rows_before, double rows_after, int64_t atom_size,
                      bool shares_var, int p) {
  const double moved =
      shares_var
          ? rows_before + static_cast<double>(atom_size)
          : 2.0 * std::sqrt(rows_before * static_cast<double>(atom_size) *
                            static_cast<double>(p));
  return std::max(moved, rows_after);
}

struct OrderSearch {
  std::vector<int> order;
  double bottleneck = 0.0;     // Max tuples touched by any step.
  std::vector<double> step_rows;  // Estimated rows after each join step.
  int64_t states = 0;
};

// Exact subset DP over left-deep orders (Selinger over atoms): state =
// set of joined atoms, value = (bottleneck, Σ intermediate rows) minimized
// lexicographically. Both combine monotonically (max / +), so extending a
// dominated state never beats extending the kept one.
OrderSearch DpOrder(const ConjunctiveQuery& q, const PlannerStats& stats,
                    int p) {
  const int n = q.num_atoms();
  const uint32_t full = (1u << n) - 1u;

  std::vector<uint64_t> atom_vars(n, 0);
  for (int j = 0; j < n; ++j) {
    for (int v : DistinctVarsOf(q.atom(j))) atom_vars[j] |= 1ull << v;
  }

  std::vector<double> mask_rows(full + 1, 0.0);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    mask_rows[mask] = EstimateMaskRows(q, stats, mask);
  }

  struct State {
    double bottleneck = kInf;
    double sum_rows = kInf;
    std::vector<int> order;
  };
  std::vector<State> dp(full + 1);
  OrderSearch out;
  for (int j = 0; j < n; ++j) {
    State& s = dp[1u << j];
    s.bottleneck = static_cast<double>(stats.sizes[j]);
    s.sum_rows = static_cast<double>(stats.sizes[j]);
    s.order = {j};
  }
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // Singletons are seeded.
    State& cur = dp[mask];
    for (int j = 0; j < n; ++j) {
      if ((mask >> j & 1u) == 0) continue;
      const uint32_t prev = mask ^ (1u << j);
      const State& from = dp[prev];
      ++out.states;
      uint64_t prev_vars = 0;
      for (int k = 0; k < n; ++k) {
        if (prev >> k & 1u) prev_vars |= atom_vars[k];
      }
      const double step = StepBottleneck(
          mask_rows[prev], mask_rows[mask], stats.sizes[j],
          (prev_vars & atom_vars[j]) != 0, p);
      const double bottleneck = std::max(from.bottleneck, step);
      const double sum_rows = from.sum_rows + mask_rows[mask];
      if (bottleneck < cur.bottleneck ||
          (bottleneck == cur.bottleneck && sum_rows < cur.sum_rows)) {
        cur.bottleneck = bottleneck;
        cur.sum_rows = sum_rows;
        cur.order = from.order;
        cur.order.push_back(j);
      }
    }
  }

  out.order = dp[full].order;
  out.bottleneck = dp[full].bottleneck;
  uint32_t prefix = 1u << out.order[0];
  for (size_t k = 1; k < out.order.size(); ++k) {
    prefix |= 1u << out.order[k];
    out.step_rows.push_back(mask_rows[prefix]);
  }
  return out;
}

// Greedy fallback past the DP's state budget: start from the smallest
// atom, repeatedly add the connected atom minimizing the next
// intermediate (unconnected atoms only when nothing connects).
OrderSearch GreedyOrder(const ConjunctiveQuery& q, const PlannerStats& stats,
                        int p) {
  const int n = q.num_atoms();
  OrderSearch out;
  std::vector<bool> used(n, false);
  std::vector<int64_t> seen(q.num_vars(), 0);

  int first = 0;
  for (int j = 1; j < n; ++j) {
    if (stats.sizes[j] < stats.sizes[first]) first = j;
  }
  used[first] = true;
  out.order.push_back(first);
  for (int v : DistinctVarsOf(q.atom(first))) {
    seen[v] = std::max<int64_t>(1, stats.distinct[first][v]);
  }
  double rows = static_cast<double>(stats.sizes[first]);
  out.bottleneck = rows;

  for (int step = 1; step < n; ++step) {
    int best = -1;
    bool best_shared = false;
    double best_rows = kInf;
    for (int j = 0; j < n; ++j) {
      if (used[j]) continue;
      ++out.states;
      double factor = static_cast<double>(stats.sizes[j]);
      bool shared = false;
      for (int v : DistinctVarsOf(q.atom(j))) {
        if (seen[v] > 0) {
          shared = true;
          factor /= static_cast<double>(std::max(
              seen[v], std::max<int64_t>(1, stats.distinct[j][v])));
        }
      }
      const double next_rows = rows * factor;
      if (best < 0 || (shared && !best_shared) ||
          (shared == best_shared && next_rows < best_rows)) {
        best = j;
        best_shared = shared;
        best_rows = next_rows;
      }
    }
    MPCQP_CHECK_GE(best, 0);
    used[best] = true;
    out.order.push_back(best);
    out.bottleneck = std::max(
        out.bottleneck,
        StepBottleneck(rows, best_rows, stats.sizes[best], best_shared, p));
    rows = best_rows;
    out.step_rows.push_back(rows);
    for (int v : DistinctVarsOf(q.atom(best))) {
      seen[v] = std::max(seen[v],
                         std::max<int64_t>(1, stats.distinct[best][v]));
    }
  }
  return out;
}

std::string OrderNames(const ConjunctiveQuery& q,
                       const std::vector<int>& order) {
  std::string out;
  for (size_t k = 0; k < order.size(); ++k) {
    if (k > 0) out += ",";
    out += q.atom(order[k]).name;
  }
  return out;
}

}  // namespace

EnumerationResult EnumeratePlans(const ConjunctiveQuery& q,
                                 const PlannerStats& stats, int p,
                                 const PlannerOptions& options) {
  EnumerationResult result;
  for (bool heavy : stats.var_is_heavy) {
    if (heavy) result.input_is_skewed = true;
  }

  std::vector<PlanAlgorithm> allowed = options.allowed;
  if (allowed.empty()) {
    allowed = {PlanAlgorithm::kHyperCube, PlanAlgorithm::kSkewHc,
               PlanAlgorithm::kBinaryPlan, PlanAlgorithm::kGym,
               PlanAlgorithm::kBigJoin};
  }
  int binary_index = -1;
  for (const PlanAlgorithm algorithm : allowed) {
    CandidatePlan plan = EstimateCandidate(algorithm, q, stats, p);
    plan.total_cost = PriceCandidate(plan.estimated_load,
                                     plan.estimated_rounds, q, options);
    if (algorithm == PlanAlgorithm::kBinaryPlan) {
      binary_index = static_cast<int>(result.candidates.size());
    }
    result.candidates.push_back(std::move(plan));
  }
  CandidatePlan* binary =
      binary_index >= 0 ? &result.candidates[binary_index] : nullptr;

  // Join-order enumeration upgrades the binary candidate from the
  // identity cascade to the best (or greedily best) left-deep order.
  std::vector<int> order(q.num_atoms());
  for (int j = 0; j < q.num_atoms(); ++j) order[j] = j;
  std::vector<double> step_rows;
  if (binary != nullptr && q.num_atoms() >= 2 &&
      options.enumerate_join_orders) {
    const bool exact =
        q.num_atoms() <= options.max_dp_atoms && q.num_vars() <= 63;
    const OrderSearch search =
        exact ? DpOrder(q, stats, p) : GreedyOrder(q, stats, p);
    order = search.order;
    step_rows = search.step_rows;
    result.dp_states = search.states;
    binary->estimated_load = search.bottleneck / p;
    binary->total_cost = PriceCandidate(binary->estimated_load,
                                        binary->estimated_rounds, q, options);
    binary->rationale = std::string(exact ? "dp" : "greedy") +
                        " join order " + OrderNames(q, order) +
                        "; max estimated intermediate " +
                        std::to_string(
                            static_cast<int64_t>(search.bottleneck));
  } else if (binary != nullptr) {
    // No enumeration: the identity cascade's step estimates still
    // annotate the tree.
    uint32_t prefix = 1u;
    for (int j = 1; j < q.num_atoms(); ++j) {
      prefix |= 1u << j;
      step_rows.push_back(EstimateMaskRows(q, stats, prefix));
    }
  }

  const CandidatePlan* best = nullptr;
  for (const CandidatePlan& plan : result.candidates) {
    if (!plan.feasible) continue;
    if (best == nullptr || plan.total_cost < best->total_cost ||
        (plan.total_cost == best->total_cost &&
         plan.estimated_rounds < best->estimated_rounds)) {
      best = &plan;
    }
  }
  MPCQP_CHECK(best != nullptr);

  result.best.family = best->algorithm;
  result.best.estimated_load = best->estimated_load;
  result.best.estimated_rounds = best->estimated_rounds;
  result.best.total_cost = best->total_cost;
  result.best.rationale = best->rationale;
  if (best->algorithm == PlanAlgorithm::kBinaryPlan) {
    result.best.join_order = order;
    result.best.skew_aware = result.input_is_skewed;
    result.best.step_est_rows = step_rows;
    result.best.tree = BuildJoinOrderTree(q, order, result.best.skew_aware,
                                          step_rows);
  } else {
    result.best.tree = BuildAlgorithmTree(q, PlanAlgorithmName(best->algorithm));
  }
  return result;
}

}  // namespace mpcqp
