#ifndef MPCQP_PLANNER_PLAN_TREE_H_
#define MPCQP_PLANNER_PLAN_TREE_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "query/query.h"

namespace mpcqp {

// The executable operator tree the enumerator emits. Exchange operators
// are explicit nodes sitting at every shuffle point: a shuffle join's two
// children are kExchange nodes (hash-repartition on the join key), whose
// own children produce the tuples. Whole-query strategies (HyperCube,
// SkewHC, GYM, BiGJoin) appear as one kAlgorithm node over all atoms —
// their internal exchange structure is owned by the respective driver.
enum class PlanOp {
  kScan,        // Leaf: one normalized atom (repeat-filtered, projected).
  kExchange,    // Hash-repartition child output on `keys`.
  kShuffleJoin, // Local join of two exchanged inputs (one MPC round).
  kProduct,     // Cartesian grid product of two inputs (one MPC round).
  kAlgorithm,   // Whole-query driver (PlanAlgorithm in algorithm_name).
  kProject,     // Root: project columns to variable-id order.
};

struct PlanNode {
  PlanOp op = PlanOp::kScan;
  int atom = -1;                 // kScan: atom index into the query.
  std::vector<int> children;     // Indices into PlanTree::nodes.
  // Output columns as query variable ids, in output order.
  std::vector<int> vars;
  // kExchange: key columns of this node's child output; kShuffleJoin
  // copies its children's keys for the local join.
  std::vector<int> keys;
  bool skew_aware = false;       // kShuffleJoin: use the skew-aware join.
  double est_rows = 0.0;         // Enumerator's cardinality estimate.
  std::string algorithm_name;    // kAlgorithm: driver name.
};

// Nodes in evaluation (post-)order; `root` indexes the final node. The
// tree is immutable once built; ToString is the EXPLAIN / golden format.
struct PlanTree {
  std::vector<PlanNode> nodes;
  int root = -1;

  bool empty() const { return nodes.empty(); }
  // Indented one-node-per-line rendering, stable across runs:
  //   project [x,y,z]
  //     shuffle-join [y] est=120
  //       exchange on [y]
  //         scan R [x,y]
  //       ...
  std::string ToString(const ConjunctiveQuery& q) const;
};

// Builds the explicit tree for a left-deep join order over `q`'s atoms:
// scans, exchanges at each shuffle point, shuffle-join/product internal
// nodes (products where no variable is shared), and a root projection.
// `est_rows[k]` (optional, may be empty) annotates the intermediate after
// joining order[0..k]. `skew_aware` mirrors BinaryPlanOptions::skew_aware.
PlanTree BuildJoinOrderTree(const ConjunctiveQuery& q,
                            const std::vector<int>& order, bool skew_aware,
                            const std::vector<double>& est_rows);

// Builds the one-node tree delegating to a whole-query driver.
PlanTree BuildAlgorithmTree(const ConjunctiveQuery& q,
                            const std::string& algorithm_name);

// Executes a join-order tree node by node: kScan normalizes the atom
// (NormalizeAtomDist), kShuffleJoin runs the hash or skew-aware parallel
// join over its exchange children's keys, kProduct the Cartesian grid,
// kProject the final column permutation. The data path is exactly
// IterativeBinaryJoin's, so outputs are bit-identical to running the
// static binary driver with the same order and cluster state. kAlgorithm
// trees must be executed by the planner (it owns the driver dispatch);
// passing one here CHECK-fails.
DistRelation ExecuteJoinOrderTree(Cluster& cluster, const ConjunctiveQuery& q,
                                  const std::vector<DistRelation>& atoms,
                                  const PlanTree& tree, Rng& rng);

}  // namespace mpcqp

#endif  // MPCQP_PLANNER_PLAN_TREE_H_
