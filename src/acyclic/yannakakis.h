#ifndef MPCQP_ACYCLIC_YANNAKAKIS_H_
#define MPCQP_ACYCLIC_YANNAKAKIS_H_

#include <vector>

#include "query/ghd.h"
#include "query/query.h"
#include "relation/relation.h"

namespace mpcqp {

// The serial Yannakakis algorithm over a decomposition (deck slides
// 64-77): materialize each bag, run the upward then downward semijoin
// phases (the full reducer), then join bottom-up. After reduction every
// intermediate is bounded by OUT, giving O(IN + OUT) data complexity.
//
// Used as the reference implementation for GYM and in its own right as a
// single-node operator. Output columns = query variables in id order.
Relation YannakakisSerial(const ConjunctiveQuery& q, const Ghd& ghd,
                          const std::vector<Relation>& atoms);

// Materializes one bag: the join of its atoms, columns = bag vars in id
// order (helper shared with GYM; exposed for tests).
Relation MaterializeBag(const ConjunctiveQuery& q, const GhdNode& node,
                        const std::vector<Relation>& atoms);

}  // namespace mpcqp

#endif  // MPCQP_ACYCLIC_YANNAKAKIS_H_
