#include "acyclic/gym.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/flat_counter.h"
#include "common/trace.h"
#include "join/hash_join.h"
#include "mpc/exchange.h"
#include "multiway/skew_hc.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

// Shared key columns between two variable lists.
void SharedKeyCols(const std::vector<int>& left_vars,
                   const std::vector<int>& right_vars,
                   std::vector<int>* left_keys, std::vector<int>* right_keys) {
  left_keys->clear();
  right_keys->clear();
  for (size_t i = 0; i < left_vars.size(); ++i) {
    const auto it =
        std::find(right_vars.begin(), right_vars.end(), left_vars[i]);
    if (it != right_vars.end()) {
      left_keys->push_back(static_cast<int>(i));
      right_keys->push_back(static_cast<int>(it - right_vars.begin()));
    }
  }
}

// Locally normalizes atom `a` of q (repeat filter + one column per
// distinct variable, ascending var order).
DistRelation NormalizedAtom(const ConjunctiveQuery& q, int a,
                            const DistRelation& rel) {
  const Atom& atom = q.atom(a);
  std::vector<int> distinct_vars;
  std::vector<int> first_col;
  for (int c = 0; c < atom.arity(); ++c) {
    if (std::find(distinct_vars.begin(), distinct_vars.end(),
                  atom.vars[c]) == distinct_vars.end()) {
      distinct_vars.push_back(atom.vars[c]);
      first_col.push_back(c);
    }
  }
  // Ascending var order.
  std::vector<int> order(distinct_vars.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return distinct_vars[x] < distinct_vars[y];
  });
  std::vector<int> cols;
  for (int i : order) cols.push_back(first_col[i]);

  DistRelation out(static_cast<int>(cols.size()), rel.num_servers());
  const bool repeats = static_cast<int>(distinct_vars.size()) != atom.arity();
  for (int s = 0; s < rel.num_servers(); ++s) {
    Relation frag = rel.fragment(s);
    if (repeats) {
      frag = Filter(frag, [&](const Value* row) {
        for (int c = 0; c < atom.arity(); ++c) {
          for (int d = c + 1; d < atom.arity(); ++d) {
            if (atom.vars[c] == atom.vars[d] && row[c] != row[d]) {
              return false;
            }
          }
        }
        return true;
      });
    }
    out.fragment(s) = Project(frag, cols);
  }
  return out;
}

// Appends a unique id column to every row of `rel` (local compute).
DistRelation WithRowIds(const DistRelation& rel) {
  DistRelation out(rel.arity() + 1, rel.num_servers());
  Value id = 0;
  std::vector<Value> row(rel.arity() + 1);
  for (int s = 0; s < rel.num_servers(); ++s) {
    const Relation& frag = rel.fragment(s);
    for (int64_t i = 0; i < frag.size(); ++i) {
      std::copy(frag.row(i), frag.row(i) + rel.arity(), row.begin());
      row[rel.arity()] = id++;
      out.fragment(s).AppendRow(row.data());
    }
  }
  return out;
}

// Drops the trailing id column (local compute).
DistRelation StripIdColumn(const DistRelation& rel) {
  std::vector<int> cols;
  for (int c = 0; c + 1 < rel.arity(); ++c) cols.push_back(c);
  DistRelation out(rel.arity() - 1, rel.num_servers());
  for (int s = 0; s < rel.num_servers(); ++s) {
    out.fragment(s) = Project(rel.fragment(s), cols);
  }
  return out;
}

}  // namespace

GymResult GymJoin(Cluster& cluster, const ConjunctiveQuery& q, const Ghd& ghd,
                  const std::vector<DistRelation>& atoms, Rng& rng,
                  const GymOptions& options) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  MPCQP_TRACE_SCOPE("gym", "algorithm");
  {
    const Status valid = ghd.Validate(q);
    MPCQP_CHECK(valid.ok()) << valid;
  }
  const int rounds_before = cluster.cost_report().num_rounds();

  // ---- Phase 0: materialize bags (columns = bag vars ascending). ----
  std::vector<DistRelation> bags;
  std::vector<std::vector<int>> bag_vars;
  {
    // Per-bag normalized atom chains; all bags advance one binary-join
    // step per shared round.
    struct BagBuild {
      DistRelation acc{0, 1};
      std::vector<int> acc_vars;
      std::vector<int> pending;  // Atom indices not yet joined.
    };
    std::vector<BagBuild> builds;
    int max_steps = 0;
    for (int n = 0; n < ghd.num_nodes(); ++n) {
      const GhdNode& node = ghd.node(n);
      BagBuild build;
      build.acc = NormalizedAtom(q, node.atoms[0], atoms[node.atoms[0]]);
      std::vector<int> distinct;
      for (int v : q.atom(node.atoms[0]).vars) {
        if (std::find(distinct.begin(), distinct.end(), v) ==
            distinct.end()) {
          distinct.push_back(v);
        }
      }
      std::sort(distinct.begin(), distinct.end());
      build.acc_vars = distinct;
      for (size_t i = 1; i < node.atoms.size(); ++i) {
        build.pending.push_back(node.atoms[i]);
      }
      max_steps =
          std::max(max_steps, static_cast<int>(build.pending.size()));
      builds.push_back(std::move(build));
    }
    for (int step = 0; step < max_steps; ++step) {
      cluster.BeginRound("gym: bag materialization step " +
                         std::to_string(step + 1));
      struct StepWork {
        int bag;
        DistRelation left{0, 1};
        DistRelation right{0, 1};
        std::vector<int> lk, rk;
        std::vector<int> right_vars;
      };
      std::vector<StepWork> work;
      for (size_t b = 0; b < builds.size(); ++b) {
        BagBuild& build = builds[b];
        if (build.pending.empty()) continue;
        // Prefer a pending atom sharing a variable with the accumulator.
        int pick_pos = 0;
        for (size_t i = 0; i < build.pending.size(); ++i) {
          bool shares = false;
          for (int v : q.atom(build.pending[i]).vars) {
            if (std::find(build.acc_vars.begin(), build.acc_vars.end(),
                          v) != build.acc_vars.end()) {
              shares = true;
            }
          }
          if (shares) {
            pick_pos = static_cast<int>(i);
            break;
          }
        }
        const int a = build.pending[pick_pos];
        build.pending.erase(build.pending.begin() + pick_pos);
        DistRelation rel = NormalizedAtom(q, a, atoms[a]);
        std::vector<int> rel_vars;
        for (int v : q.atom(a).vars) {
          if (std::find(rel_vars.begin(), rel_vars.end(), v) ==
              rel_vars.end()) {
            rel_vars.push_back(v);
          }
        }
        std::sort(rel_vars.begin(), rel_vars.end());
        StepWork w;
        w.bag = static_cast<int>(b);
        SharedKeyCols(build.acc_vars, rel_vars, &w.lk, &w.rk);
        const HashFunction hash = cluster.NewHashFunction();
        // Disconnected bags degrade to a broadcast cross product (left in
        // place, right replicated) — simple and correct for bag-local use.
        w.left = w.lk.empty()
                     ? build.acc
                     : HashPartition(cluster, build.acc, w.lk, hash, "");
        w.right = w.rk.empty()
                      ? Broadcast(cluster, rel, "")
                      : HashPartition(cluster, rel, w.rk, hash, "");
        w.right_vars = rel_vars;
        work.push_back(std::move(w));
      }
      cluster.EndRound();
      for (StepWork& w : work) {
        BagBuild& build = builds[w.bag];
        std::vector<Relation> frags;
        for (int s = 0; s < p; ++s) {
          frags.push_back(HashJoinLocal(w.left.fragment(s),
                                        w.right.fragment(s), w.lk, w.rk));
        }
        build.acc = DistRelation::FromFragments(std::move(frags));
        for (size_t c = 0; c < w.right_vars.size(); ++c) {
          if (std::find(w.rk.begin(), w.rk.end(), static_cast<int>(c)) ==
              w.rk.end()) {
            build.acc_vars.push_back(w.right_vars[c]);
          }
        }
      }
    }
    // Project every bag to ascending var order.
    for (int n = 0; n < ghd.num_nodes(); ++n) {
      BagBuild& build = builds[n];
      std::vector<int> sorted_vars = build.acc_vars;
      std::sort(sorted_vars.begin(), sorted_vars.end());
      std::vector<int> cols;
      for (int v : sorted_vars) {
        const auto it = std::find(build.acc_vars.begin(),
                                  build.acc_vars.end(), v);
        cols.push_back(static_cast<int>(it - build.acc_vars.begin()));
      }
      DistRelation bag(static_cast<int>(cols.size()), p);
      for (int s = 0; s < p; ++s) {
        bag.fragment(s) = Project(build.acc.fragment(s), cols);
      }
      bags.push_back(std::move(bag));
      bag_vars.push_back(std::move(sorted_vars));
    }
  }

  GymResult result{DistRelation(q.num_vars(), p), 0, 0};
  for (const DistRelation& bag : bags) {
    result.max_bag_size = std::max(result.max_bag_size, bag.TotalSize());
  }

  const std::vector<std::vector<int>> levels = ghd.LevelsFromRoot();
  std::vector<int> lk;
  std::vector<int> rk;

  // ---- Phase 1: upward semijoins. ----
  for (int d = static_cast<int>(levels.size()) - 2; d >= 0; --d) {
    // Parents at level d, children at level d+1.
    std::map<int, std::vector<int>> children_of;
    for (int n : levels[d + 1]) {
      children_of[ghd.node(n).parent].push_back(n);
    }
    if (children_of.empty()) continue;

    if (!options.optimized) {
      for (const auto& [parent, children] : children_of) {
        for (int child : children) {
          const HashFunction hash = cluster.NewHashFunction();
          SharedKeyCols(bag_vars[parent], bag_vars[child], &lk, &rk);
          cluster.BeginRound("gym: upward semijoin");
          DistRelation pp = lk.empty()
                                ? bags[parent]
                                : HashPartition(cluster, bags[parent], lk,
                                                hash, "");
          DistRelation cp = rk.empty()
                                ? Broadcast(cluster, bags[child], "")
                                : HashPartition(cluster, bags[child], rk,
                                                hash, "");
          cluster.EndRound();
          std::vector<Relation> frags;
          for (int s = 0; s < p; ++s) {
            frags.push_back(
                SemijoinLocal(pp.fragment(s), cp.fragment(s), lk, rk));
          }
          bags[parent] = DistRelation::FromFragments(std::move(frags));
        }
      }
    } else {
      // Optimized: every (parent, child) semijoin copy in one round;
      // multi-child parents intersect their copies in a second round.
      struct Copy {
        int parent;
        DistRelation filtered{0, 1};
      };
      std::vector<Copy> copies;
      std::map<int, DistRelation> parent_with_id;
      for (const auto& [parent, children] : children_of) {
        parent_with_id.emplace(parent, WithRowIds(bags[parent]));
      }
      cluster.BeginRound("gym: upward semijoin level");
      struct PendingPair {
        int parent;
        DistRelation pp{0, 1};
        DistRelation cp{0, 1};
        std::vector<int> lk, rk;
      };
      std::vector<PendingPair> pairs;
      for (const auto& [parent, children] : children_of) {
        for (int child : children) {
          const HashFunction hash = cluster.NewHashFunction();
          SharedKeyCols(bag_vars[parent], bag_vars[child], &lk, &rk);
          PendingPair pair;
          pair.parent = parent;
          pair.lk = lk;
          pair.rk = rk;
          pair.pp = lk.empty() ? parent_with_id.at(parent)
                               : HashPartition(cluster,
                                               parent_with_id.at(parent), lk,
                                               hash, "");
          pair.cp = rk.empty()
                        ? Broadcast(cluster, bags[child], "")
                        : HashPartition(cluster, bags[child], rk, hash, "");
          pairs.push_back(std::move(pair));
        }
      }
      cluster.EndRound();
      for (PendingPair& pair : pairs) {
        std::vector<Relation> frags;
        for (int s = 0; s < p; ++s) {
          frags.push_back(SemijoinLocal(pair.pp.fragment(s),
                                        pair.cp.fragment(s), pair.lk,
                                        pair.rk));
        }
        copies.push_back(
            {pair.parent, DistRelation::FromFragments(std::move(frags))});
      }

      bool need_intersect = false;
      for (const auto& [parent, children] : children_of) {
        if (children.size() > 1) need_intersect = true;
      }
      if (!need_intersect) {
        for (Copy& copy : copies) {
          bags[copy.parent] = StripIdColumn(copy.filtered);
        }
      } else {
        // Intersection round: align copies by row id, keep ids surviving
        // every child's filter.
        cluster.BeginRound("gym: upward semijoin intersect");
        std::map<int, std::vector<DistRelation>> routed;
        for (Copy& copy : copies) {
          const int id_col = copy.filtered.arity() - 1;
          const HashFunction hash(0x517cc1b727220a95ULL);
          routed[copy.parent].push_back(
              HashPartition(cluster, copy.filtered, {id_col}, hash, ""));
        }
        cluster.EndRound();
        for (auto& [parent, parts] : routed) {
          const size_t need = parts.size();
          const int id_col = parts[0].arity() - 1;
          std::vector<Relation> frags;
          for (int s = 0; s < p; ++s) {
            FlatCounter count;
            for (const DistRelation& part : parts) {
              const Relation& f = part.fragment(s);
              for (int64_t i = 0; i < f.size(); ++i) {
                count.Add(f.at(i, id_col));
              }
            }
            // Representative rows come from the first copy.
            const Relation& rep = parts[0].fragment(s);
            Relation out(rep.arity());
            for (int64_t i = 0; i < rep.size(); ++i) {
              if (count.Get(rep.at(i, id_col)) ==
                  static_cast<int64_t>(need)) {
                out.AppendRowFrom(rep, i);
              }
            }
            frags.push_back(std::move(out));
          }
          bags[parent] =
              StripIdColumn(DistRelation::FromFragments(std::move(frags)));
        }
      }
    }
  }

  // ---- Phase 2: downward semijoins. ----
  for (size_t d = 0; d + 1 < levels.size(); ++d) {
    if (!options.optimized) {
      for (int child : levels[d + 1]) {
        const int parent = ghd.node(child).parent;
        const HashFunction hash = cluster.NewHashFunction();
        SharedKeyCols(bag_vars[child], bag_vars[parent], &lk, &rk);
        cluster.BeginRound("gym: downward semijoin");
        DistRelation cp = lk.empty()
                              ? bags[child]
                              : HashPartition(cluster, bags[child], lk, hash,
                                              "");
        DistRelation pp = rk.empty()
                              ? Broadcast(cluster, bags[parent], "")
                              : HashPartition(cluster, bags[parent], rk,
                                              hash, "");
        cluster.EndRound();
        std::vector<Relation> frags;
        for (int s = 0; s < p; ++s) {
          frags.push_back(
              SemijoinLocal(cp.fragment(s), pp.fragment(s), lk, rk));
        }
        bags[child] = DistRelation::FromFragments(std::move(frags));
      }
    } else {
      cluster.BeginRound("gym: downward semijoin level");
      struct PendingPair {
        int child;
        DistRelation cp{0, 1};
        DistRelation pp{0, 1};
        std::vector<int> lk, rk;
      };
      std::vector<PendingPair> pairs;
      for (int child : levels[d + 1]) {
        const int parent = ghd.node(child).parent;
        const HashFunction hash = cluster.NewHashFunction();
        SharedKeyCols(bag_vars[child], bag_vars[parent], &lk, &rk);
        PendingPair pair;
        pair.child = child;
        pair.lk = lk;
        pair.rk = rk;
        pair.cp = lk.empty()
                      ? bags[child]
                      : HashPartition(cluster, bags[child], lk, hash, "");
        pair.pp = rk.empty()
                      ? Broadcast(cluster, bags[parent], "")
                      : HashPartition(cluster, bags[parent], rk, hash, "");
        pairs.push_back(std::move(pair));
      }
      cluster.EndRound();
      for (PendingPair& pair : pairs) {
        std::vector<Relation> frags;
        for (int s = 0; s < p; ++s) {
          frags.push_back(SemijoinLocal(pair.cp.fragment(s),
                                        pair.pp.fragment(s), pair.lk,
                                        pair.rk));
        }
        bags[pair.child] = DistRelation::FromFragments(std::move(frags));
      }
    }
  }

  // ---- Phase 3: join. ----
  if (options.optimized) {
    // One SkewHC round over the reduced bags.
    std::vector<Atom> bag_atoms;
    for (int n = 0; n < ghd.num_nodes(); ++n) {
      Atom atom;
      atom.name = "B" + std::to_string(n);
      atom.vars = bag_vars[n];
      bag_atoms.push_back(std::move(atom));
    }
    const ConjunctiveQuery bag_query =
        ConjunctiveQuery::Make(q.var_names(), bag_atoms);
    SkewHcOptions hc;
    hc.rounding = options.rounding;
    result.output = SkewHcJoin(cluster, bag_query, bags, hc).output;
  } else {
    std::vector<DistRelation> results = bags;
    std::vector<std::vector<int>> result_vars = bag_vars;
    for (auto level = levels.rbegin(); level != levels.rend(); ++level) {
      for (int n : *level) {
        const int parent = ghd.node(n).parent;
        if (parent < 0) continue;
        SharedKeyCols(result_vars[parent], result_vars[n], &lk, &rk);
        const HashFunction hash = cluster.NewHashFunction();
        cluster.BeginRound("gym: join step");
        DistRelation pp =
            lk.empty() ? results[parent]
                       : HashPartition(cluster, results[parent], lk, hash,
                                       "");
        DistRelation cp = rk.empty()
                              ? Broadcast(cluster, results[n], "")
                              : HashPartition(cluster, results[n], rk, hash,
                                              "");
        cluster.EndRound();
        std::vector<Relation> frags;
        for (int s = 0; s < p; ++s) {
          frags.push_back(
              HashJoinLocal(pp.fragment(s), cp.fragment(s), lk, rk));
        }
        results[parent] = DistRelation::FromFragments(std::move(frags));
        for (size_t c = 0; c < result_vars[n].size(); ++c) {
          if (std::find(rk.begin(), rk.end(), static_cast<int>(c)) ==
              rk.end()) {
            result_vars[parent].push_back(result_vars[n][c]);
          }
        }
      }
    }
    const int root = ghd.root();
    MPCQP_CHECK_EQ(static_cast<int>(result_vars[root].size()), q.num_vars());
    std::vector<int> cols(q.num_vars());
    for (int v = 0; v < q.num_vars(); ++v) {
      const auto it = std::find(result_vars[root].begin(),
                                result_vars[root].end(), v);
      cols[v] = static_cast<int>(it - result_vars[root].begin());
    }
    for (int s = 0; s < p; ++s) {
      result.output.fragment(s) = Project(results[root].fragment(s), cols);
    }
  }

  (void)rng;
  result.rounds = cluster.cost_report().num_rounds() - rounds_before;
  return result;
}

}  // namespace mpcqp
