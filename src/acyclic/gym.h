#ifndef MPCQP_ACYCLIC_GYM_H_
#define MPCQP_ACYCLIC_GYM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "multiway/shares.h"
#include "query/ghd.h"
#include "query/query.h"

namespace mpcqp {

// GYM: distributed Yannakakis over a GHD (deck slides 78-95).
//
// Phases:
//   0. Materialize each bag (free for width-1 GHDs; width-w bags take w-1
//      step-parallel binary-join rounds).
//   1. Upward semijoin phase (leaves toward root).
//   2. Downward semijoin phase (root toward leaves).
//   3. Join phase (bottom-up).
//
// Vanilla mode runs one semijoin/join per round (the r = O(n) of slide
// 78; star-4 takes 9 rounds, slides 80-89). Optimized mode processes a
// whole GHD level per round — parallel semijoin copies + an intersection
// round where a parent has several children — and replaces the join phase
// with a single SkewHC round over the reduced bags (r = O(d); star-4
// takes 4 rounds, slides 90-94).
//
// Load: O((IN^w + OUT)/p) — linear scalability whenever OUT (and the bag
// materializations) stay proportional to input (slide 78).
struct GymOptions {
  bool optimized = false;
  ShareRounding rounding = ShareRounding::kFloorGreedy;
};

struct GymResult {
  // Output columns = query variables in id order.
  DistRelation output;
  // MPC rounds this call consumed (measured on the cluster).
  int rounds = 0;
  // Largest materialized bag, the IN^w term of the load bound.
  int64_t max_bag_size = 0;
};

// atoms[j] instantiates q.atom(j); `ghd` must validate against `q`.
GymResult GymJoin(Cluster& cluster, const ConjunctiveQuery& q, const Ghd& ghd,
                  const std::vector<DistRelation>& atoms, Rng& rng,
                  const GymOptions& options = {});

}  // namespace mpcqp

#endif  // MPCQP_ACYCLIC_GYM_H_
