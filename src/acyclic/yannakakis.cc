#include "acyclic/yannakakis.h"

#include <algorithm>

#include "common/check.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"

namespace mpcqp {

Relation MaterializeBag(const ConjunctiveQuery& q, const GhdNode& node,
                        const std::vector<Relation>& atoms) {
  MPCQP_CHECK(!node.atoms.empty());
  // Sub-query over the bag's vars (already sorted ascending by Ghd).
  std::vector<int> index_of_var(q.num_vars(), -1);
  std::vector<std::string> names;
  for (size_t i = 0; i < node.vars.size(); ++i) {
    index_of_var[node.vars[i]] = static_cast<int>(i);
    names.push_back(q.var_name(node.vars[i]));
  }
  std::vector<Atom> sub_atoms;
  std::vector<Relation> sub_rels;
  for (int a : node.atoms) {
    Atom atom = q.atom(a);
    for (int& v : atom.vars) v = index_of_var[v];
    sub_atoms.push_back(std::move(atom));
    sub_rels.push_back(atoms[a]);
  }
  const ConjunctiveQuery sub = ConjunctiveQuery::Make(names, sub_atoms);
  return EvalJoinLocal(sub, sub_rels);
}

namespace {

// Key columns of the shared variables between two var lists.
void SharedKeyCols(const std::vector<int>& left_vars,
                   const std::vector<int>& right_vars,
                   std::vector<int>* left_keys, std::vector<int>* right_keys) {
  left_keys->clear();
  right_keys->clear();
  for (size_t i = 0; i < left_vars.size(); ++i) {
    const auto it =
        std::find(right_vars.begin(), right_vars.end(), left_vars[i]);
    if (it != right_vars.end()) {
      left_keys->push_back(static_cast<int>(i));
      right_keys->push_back(static_cast<int>(it - right_vars.begin()));
    }
  }
}

}  // namespace

Relation YannakakisSerial(const ConjunctiveQuery& q, const Ghd& ghd,
                          const std::vector<Relation>& atoms) {
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  const Status valid = ghd.Validate(q);
  MPCQP_CHECK(valid.ok()) << valid;

  // Bags (columns = bag vars ascending).
  std::vector<Relation> bags;
  for (int n = 0; n < ghd.num_nodes(); ++n) {
    bags.push_back(MaterializeBag(q, ghd.node(n), atoms));
  }

  const std::vector<std::vector<int>> levels = ghd.LevelsFromRoot();

  // Upward semijoin phase: deepest level first, parent ⋉ child.
  std::vector<int> lk;
  std::vector<int> rk;
  for (auto level = levels.rbegin(); level != levels.rend(); ++level) {
    for (int n : *level) {
      const int parent = ghd.node(n).parent;
      if (parent < 0) continue;
      SharedKeyCols(ghd.node(parent).vars, ghd.node(n).vars, &lk, &rk);
      bags[parent] = SemijoinLocal(bags[parent], bags[n], lk, rk);
    }
  }
  // Downward semijoin phase: child ⋉ parent, top level first.
  for (const std::vector<int>& level : levels) {
    for (int n : level) {
      const int parent = ghd.node(n).parent;
      if (parent < 0) continue;
      SharedKeyCols(ghd.node(n).vars, ghd.node(parent).vars, &lk, &rk);
      bags[n] = SemijoinLocal(bags[n], bags[parent], lk, rk);
    }
  }

  // Join phase: bottom-up; child results fold into their parents.
  std::vector<Relation> results = bags;
  std::vector<std::vector<int>> result_vars;
  for (int n = 0; n < ghd.num_nodes(); ++n) {
    result_vars.push_back(ghd.node(n).vars);
  }
  for (auto level = levels.rbegin(); level != levels.rend(); ++level) {
    for (int n : *level) {
      const int parent = ghd.node(n).parent;
      if (parent < 0) continue;
      SharedKeyCols(result_vars[parent], result_vars[n], &lk, &rk);
      results[parent] = HashJoinLocal(results[parent], results[n], lk, rk);
      // Output: parent vars then child's non-key vars.
      for (size_t c = 0; c < result_vars[n].size(); ++c) {
        if (std::find(rk.begin(), rk.end(), static_cast<int>(c)) ==
            rk.end()) {
          result_vars[parent].push_back(result_vars[n][c]);
        }
      }
    }
  }

  // Project the root result to variable-id order.
  const int root = ghd.root();
  MPCQP_CHECK_EQ(static_cast<int>(result_vars[root].size()), q.num_vars());
  std::vector<int> cols(q.num_vars());
  for (int v = 0; v < q.num_vars(); ++v) {
    const auto it =
        std::find(result_vars[root].begin(), result_vars[root].end(), v);
    MPCQP_CHECK(it != result_vars[root].end());
    cols[v] = static_cast<int>(it - result_vars[root].begin());
  }
  return Project(results[root], cols);
}

}  // namespace mpcqp
