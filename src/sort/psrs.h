#ifndef MPCQP_SORT_PSRS_H_
#define MPCQP_SORT_PSRS_H_

#include <vector>

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// Parallel Sort by Regular Sampling (deck slides 100-102).
//
// Round 1: every server sorts its fragment locally, extracts p-1 regular
// samples, and broadcasts them (all servers receive everyone's samples and
// deterministically compute the same p-1 global splitters).
// Round 2: range-partition all data by the splitters; each server sorts
// its received interval locally.
//
// Load: N/p + O(p^2) — the p^2 term is the sample exchange, which is why
// PSRS needs p << N^{1/3}. The optional sampling mode replaces the regular
// sample of the sorted fragment with random sampling (slide 102's "modern
// implementations" note); the round structure is identical.

struct PsrsOptions {
  // Lexicographic sort key; must be non-empty.
  std::vector<int> key_cols;
  // If true, pick splitter candidates by random sampling instead of
  // regular sampling of the locally sorted run.
  bool use_sampling = false;
  // Candidates per server in sampling mode (0 = p-1, like regular mode).
  int samples_per_server = 0;
};

struct PsrsResult {
  // Globally sorted: every tuple on server s sorts <= every tuple on
  // server s+1, and each fragment is locally sorted.
  DistRelation sorted;
  // The p-1 composite splitters (key_cols values each) that were chosen.
  std::vector<std::vector<Value>> splitters;
};

// Runs PSRS on `rel`. `rng` is only used in sampling mode (may be null
// otherwise).
PsrsResult PsrsSort(Cluster& cluster, const DistRelation& rel,
                    const PsrsOptions& options, Rng* rng = nullptr);

// Lexicographic comparison of rows `a`, `b` restricted to key_cols.
int CompareRowsOnKey(const Value* a, const Value* b,
                     const std::vector<int>& key_cols);

// True iff `rel` is globally sorted on key_cols (fragment s entirely <=
// fragment s+1, each fragment locally sorted).
bool IsGloballySorted(const DistRelation& rel,
                      const std::vector<int>& key_cols);

}  // namespace mpcqp

#endif  // MPCQP_SORT_PSRS_H_
