#include "sort/multi_round_sort.h"

#include <algorithm>

#include "common/check.h"
#include "common/trace.h"
#include "mpc/metrics.h"

namespace mpcqp {

namespace {

struct Bucket {
  int server_begin;  // Inclusive.
  int server_end;    // Exclusive.
  int NumServers() const { return server_end - server_begin; }
};

}  // namespace

MultiRoundSortResult MultiRoundSort(Cluster& cluster, const DistRelation& rel,
                                    int col, int fan_out, Rng& rng,
                                    int samples_per_server) {
  MPCQP_CHECK_GE(fan_out, 2);
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  MPCQP_TRACE_SCOPE("multi_round_sort", "algorithm");
  if (samples_per_server <= 0) samples_per_server = 8 * fan_out;

  DistRelation data = rel;
  std::vector<Bucket> buckets{{0, p}};
  int rounds = 0;

  while (true) {
    bool any_multi = false;
    for (const Bucket& b : buckets) {
      if (b.NumServers() > 1) any_multi = true;
    }
    if (!any_multi) break;

    cluster.BeginRound("multi-round sort: split level " +
                       std::to_string(rounds + 1));
    ++rounds;

    std::vector<Bucket> next_buckets;
    DistRelation next_data(rel.arity(), p);

    for (const Bucket& bucket : buckets) {
      if (bucket.NumServers() == 1) {
        // Stable bucket; data stays put (no communication, COW handle).
        next_buckets.push_back(bucket);
        next_data.fragment(bucket.server_begin) =
            data.fragment(bucket.server_begin);
        continue;
      }

      const int group = bucket.NumServers();
      const int f = std::min(fan_out, group);

      // Sample splitter candidates on each group server and broadcast them
      // within the group (metered: each sample goes to every group member).
      std::vector<Value> pooled;
      for (int s = bucket.server_begin; s < bucket.server_end; ++s) {
        const Relation& frag = data.fragment(s);
        const int64_t take =
            std::min<int64_t>(frag.size(), samples_per_server);
        for (int64_t i = 0; i < take; ++i) {
          pooled.push_back(frag.at(
              static_cast<int64_t>(rng.Uniform(
                  static_cast<uint64_t>(frag.size()))),
              col));
        }
        for (int dst = bucket.server_begin; dst < bucket.server_end; ++dst) {
          if (take > 0) cluster.RecordMessage(s, dst, take, take);
        }
      }
      std::sort(pooled.begin(), pooled.end());
      std::vector<Value> splitters;
      for (int i = 1; i < f; ++i) {
        if (pooled.empty()) break;
        splitters.push_back(
            pooled[std::min<size_t>(pooled.size() - 1,
                                    i * pooled.size() / f)]);
      }

      // Sub-bucket server ranges: split the group as evenly as possible.
      std::vector<Bucket> subs;
      for (int i = 0; i < f; ++i) {
        const int lo = bucket.server_begin + i * group / f;
        const int hi = bucket.server_begin + (i + 1) * group / f;
        subs.push_back({lo, hi});
      }

      // Redistribute: splitter index selects the sub-bucket; a per-source
      // cyclic counter spreads tuples across the sub-bucket's servers.
      std::vector<int64_t> cyclic(f, 0);
      for (int src = bucket.server_begin; src < bucket.server_end; ++src) {
        const Relation& frag = data.fragment(src);
        std::vector<int64_t> sent(p, 0);
        for (int64_t i = 0; i < frag.size(); ++i) {
          const Value v = frag.at(i, col);
          const int sub = static_cast<int>(
              std::upper_bound(splitters.begin(), splitters.end(), v) -
              splitters.begin());
          const Bucket& target = subs[sub];
          const int dst = target.server_begin +
                          static_cast<int>(cyclic[sub]++ %
                                           target.NumServers());
          next_data.fragment(dst).AppendRowFrom(frag, i);
          ++sent[dst];
        }
        for (int dst = 0; dst < p; ++dst) {
          if (sent[dst] > 0) {
            cluster.RecordMessage(src, dst, sent[dst],
                                  sent[dst] * rel.arity());
          }
        }
      }
      for (const Bucket& sub : subs) next_buckets.push_back(sub);
    }

    cluster.EndRound();
    data = std::move(next_data);
    buckets = std::move(next_buckets);
  }

  ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    MPCQP_TRACE_SCOPE_ARG("local sort", "compute", s);
    data.fragment(s).SortRowsBy({col}, &cluster.pool());
  });
  return MultiRoundSortResult{std::move(data), rounds};
}

}  // namespace mpcqp
