#ifndef MPCQP_SORT_MULTI_ROUND_SORT_H_
#define MPCQP_SORT_MULTI_ROUND_SORT_H_

#include <vector>

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// Multi-round distribution sort for the fine-grained regime (deck slides
// 103-105): when p is large relative to N, a one-shot splitter exchange
// (PSRS) would itself exceed the load budget, and sorting takes Ω(log_L N)
// rounds.
//
// The algorithm recursively splits the server range: each round, every
// active bucket (a contiguous server group holding one key interval)
// samples splitter candidates, broadcasts them within the group, and
// redistributes its data into `fan_out` sub-buckets. After ceil(log_fan(p))
// rounds every bucket is a single server, which sorts locally.
//
// Smaller fan-out means lower per-round splitter traffic but more rounds —
// the r-vs-L tradeoff the lower bound formalizes. (Goodrich's
// load-optimal BSP sort has the same structure with careful sample sizes;
// the deck itself notes it is "very complex", and this simplified
// distribution sort reproduces the tradeoff's shape.)
struct MultiRoundSortResult {
  DistRelation sorted;
  int rounds = 0;
};

// Sorts `rel` by `col` with the given fan-out (>= 2). `samples_per_server`
// splitter candidates are drawn per server per split (default 8 * fan_out).
MultiRoundSortResult MultiRoundSort(Cluster& cluster, const DistRelation& rel,
                                    int col, int fan_out, Rng& rng,
                                    int samples_per_server = 0);

}  // namespace mpcqp

#endif  // MPCQP_SORT_MULTI_ROUND_SORT_H_
