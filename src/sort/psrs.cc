#include "sort/psrs.h"

#include <algorithm>

#include "common/check.h"
#include "common/trace.h"
#include "mpc/exchange.h"
#include "mpc/metrics.h"

namespace mpcqp {

int CompareRowsOnKey(const Value* a, const Value* b,
                     const std::vector<int>& key_cols) {
  for (int c : key_cols) {
    if (a[c] != b[c]) return a[c] < b[c] ? -1 : 1;
  }
  return 0;
}

namespace {

// Extracts the key columns of `row` as a vector.
std::vector<Value> KeyOf(const Value* row, const std::vector<int>& key_cols) {
  std::vector<Value> key(key_cols.size());
  for (size_t i = 0; i < key_cols.size(); ++i) key[i] = row[key_cols[i]];
  return key;
}

int CompareKeyToRow(const std::vector<Value>& key, const Value* row,
                    const std::vector<int>& key_cols) {
  for (size_t i = 0; i < key_cols.size(); ++i) {
    const Value rv = row[key_cols[i]];
    if (key[i] != rv) return key[i] < rv ? -1 : 1;
  }
  return 0;
}

}  // namespace

PsrsResult PsrsSort(Cluster& cluster, const DistRelation& rel,
                    const PsrsOptions& options, Rng* rng) {
  MPCQP_CHECK(!options.key_cols.empty());
  for (int c : options.key_cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, rel.arity());
  }
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  MPCQP_TRACE_SCOPE("psrs", "algorithm");

  // Local sort (free compute, one pool task per server), then per-server
  // splitter candidates. Candidate selection stays serial: in sampling
  // mode it draws from the shared Rng sequentially, and its cost is O(p).
  DistRelation local = rel;
  {
    ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
    cluster.pool().ParallelFor(p, [&](int64_t s) {
      MPCQP_TRACE_SCOPE_ARG("local sort", "compute", s);
      // Pass the pool through: when fragments outnumber threads the sort
      // kernel stays serial per fragment, but idle workers (p < threads,
      // or straggler fragments) pick up chunk-sort/merge subtasks.
      local.fragment(s).SortRowsBy(options.key_cols, &cluster.pool());
    });
  }

  DistRelation candidates(rel.arity(), p);
  const int per_server = options.use_sampling && options.samples_per_server > 0
                             ? options.samples_per_server
                             : p - 1;
  for (int s = 0; s < p; ++s) {
    const Relation& frag = local.fragment(s);
    if (frag.empty()) continue;
    Relation& out = candidates.fragment(s);
    if (options.use_sampling) {
      MPCQP_CHECK(rng != nullptr) << "sampling mode needs an Rng";
      for (int i = 0; i < per_server; ++i) {
        out.AppendRowFrom(frag,
                          static_cast<int64_t>(rng->Uniform(
                              static_cast<uint64_t>(frag.size()))));
      }
    } else {
      // Regular sample: the (i+1) * n/p -th elements of the sorted run.
      for (int i = 0; i < per_server; ++i) {
        const int64_t pos = std::min<int64_t>(
            frag.size() - 1, (static_cast<int64_t>(i) + 1) * frag.size() / p);
        out.AppendRowFrom(frag, pos);
      }
    }
  }

  // Round 1: every server receives every sample and computes splitters
  // deterministically.
  DistRelation all_samples =
      Broadcast(cluster, candidates, "psrs: sample broadcast");
  Relation sample_pool = all_samples.fragment(0);
  sample_pool.SortRowsBy(options.key_cols, &cluster.pool());

  std::vector<std::vector<Value>> splitters;
  const int64_t m = sample_pool.size();
  for (int i = 1; i < p; ++i) {
    if (m == 0) break;
    const int64_t pos = std::min<int64_t>(m - 1, i * m / p);
    splitters.push_back(KeyOf(sample_pool.row(pos), options.key_cols));
  }
  // Degenerate inputs (fewer samples than servers) can leave splitters
  // short; pad by repeating the last (empty upper servers are fine).
  while (static_cast<int>(splitters.size()) < p - 1) {
    splitters.push_back(splitters.empty()
                            ? std::vector<Value>(options.key_cols.size(), 0)
                            : splitters.back());
  }

  // Round 2: range partition by the composite splitters, then local sort.
  DistRelation sorted = Route(
      cluster, local,
      [&](const Value* row, std::vector<int>& dests) {
        // First splitter strictly greater than the row key; ties go left
        // so that runs of equal keys stay on one server.
        int lo = 0;
        int hi = static_cast<int>(splitters.size());
        while (lo < hi) {
          const int mid = (lo + hi) / 2;
          // splitters[mid] > row ?
          if (CompareKeyToRow(splitters[mid], row, options.key_cols) > 0) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        dests.push_back(lo);
      },
      "psrs: range partition");
  ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    MPCQP_TRACE_SCOPE_ARG("local sort", "compute", s);
    sorted.fragment(s).SortRowsBy(options.key_cols, &cluster.pool());
  });

  return PsrsResult{std::move(sorted), std::move(splitters)};
}

bool IsGloballySorted(const DistRelation& rel,
                      const std::vector<int>& key_cols) {
  const Value* prev = nullptr;
  for (int s = 0; s < rel.num_servers(); ++s) {
    const Relation& frag = rel.fragment(s);
    for (int64_t i = 0; i < frag.size(); ++i) {
      const Value* cur = frag.row(i);
      if (prev != nullptr && CompareRowsOnKey(prev, cur, key_cols) > 0) {
        return false;
      }
      prev = cur;
    }
  }
  return true;
}

}  // namespace mpcqp
