#ifndef MPCQP_SORT_BAND_JOIN_H_
#define MPCQP_SORT_BAND_JOIN_H_

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// Distributed band (similarity) join — one of the deck's motivating
// applications of parallel sorting (slide 99):
//
//   SELECT * FROM L, R WHERE |L.a - R.b| <= epsilon
//
// Algorithm: PSRS-sort `right` by its key to obtain balanced range
// splitters and home fragments; then route every `left` tuple to every
// server whose key interval intersects [key-eps, key+eps] (boundary
// replication). Each server finishes with a sorted-window sweep. Each
// output pair is produced exactly once, at the right tuple's home server.
//
// Three rounds (two for PSRS, one for the left routing); load
// O(IN/p + replication), where replication is the number of tuples within
// epsilon of a boundary — small when epsilon << domain/p.
//
// Output columns: all of left, then all of right.
DistRelation BandJoin(Cluster& cluster, const DistRelation& left,
                      const DistRelation& right, int left_col, int right_col,
                      Value epsilon);

}  // namespace mpcqp

#endif  // MPCQP_SORT_BAND_JOIN_H_
