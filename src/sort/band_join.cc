#include "sort/band_join.h"

#include <algorithm>

#include "common/check.h"
#include "mpc/exchange.h"
#include "sort/psrs.h"

namespace mpcqp {

DistRelation BandJoin(Cluster& cluster, const DistRelation& left,
                      const DistRelation& right, int left_col, int right_col,
                      Value epsilon) {
  MPCQP_CHECK_GE(left_col, 0);
  MPCQP_CHECK_LT(left_col, left.arity());
  MPCQP_CHECK_GE(right_col, 0);
  MPCQP_CHECK_LT(right_col, right.arity());
  const int p = cluster.num_servers();

  // Rounds 1-2: PSRS on the right side; its splitters define the server
  // intervals.
  PsrsOptions options;
  options.key_cols = {right_col};
  const PsrsResult sorted_right = PsrsSort(cluster, right, options);
  std::vector<Value> splitters;
  splitters.reserve(sorted_right.splitters.size());
  for (const auto& key : sorted_right.splitters) {
    splitters.push_back(key.front());
  }

  // Round 3: replicate each left tuple to every server whose interval
  // intersects its epsilon window. Server i owns [splitters[i-1],
  // splitters[i]) with ties-to-the-right at boundaries (upper_bound),
  // matching the PSRS partition.
  const DistRelation routed_left = Route(
      cluster, left,
      [&](const Value* row, std::vector<int>& dests) {
        const Value key = row[left_col];
        const Value lo = key >= epsilon ? key - epsilon : 0;
        const Value hi =
            key + epsilon >= key ? key + epsilon : ~Value{0};  // Saturate.
        const int first = static_cast<int>(
            std::upper_bound(splitters.begin(), splitters.end(), lo) -
            splitters.begin());
        // PSRS's binary search sends a right tuple with key k to the
        // first index whose splitter exceeds k; the last server whose
        // interval can contain hi is upper_bound(hi).
        const int last = static_cast<int>(
            std::upper_bound(splitters.begin(), splitters.end(), hi) -
            splitters.begin());
        for (int s = first; s <= last; ++s) dests.push_back(s);
      },
      "band join: window replication");

  // Local sweep: sort both sides, slide a window.
  std::vector<Relation> outputs;
  outputs.reserve(p);
  std::vector<Value> scratch(left.arity() + right.arity());
  for (int s = 0; s < p; ++s) {
    Relation lf = routed_left.fragment(s);
    lf.SortRowsBy({left_col});
    const Relation& rf = sorted_right.sorted.fragment(s);  // Sorted already.
    Relation out(left.arity() + right.arity());
    int64_t window_start = 0;
    for (int64_t ri = 0; ri < rf.size(); ++ri) {
      const Value rkey = rf.at(ri, right_col);
      const Value lo = rkey >= epsilon ? rkey - epsilon : 0;
      while (window_start < lf.size() &&
             lf.at(window_start, left_col) < lo) {
        ++window_start;
      }
      for (int64_t li = window_start; li < lf.size(); ++li) {
        const Value lkey = lf.at(li, left_col);
        if (lkey > rkey && lkey - rkey > epsilon) break;
        std::copy(lf.row(li), lf.row(li) + left.arity(), scratch.begin());
        std::copy(rf.row(ri), rf.row(ri) + right.arity(),
                  scratch.begin() + left.arity());
        out.AppendRow(scratch.data());
      }
    }
    outputs.push_back(std::move(out));
  }
  return DistRelation::FromFragments(std::move(outputs));
}

}  // namespace mpcqp
