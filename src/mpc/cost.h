#ifndef MPCQP_MPC_COST_H_
#define MPCQP_MPC_COST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mpcqp {

// Communication incurred during one MPC round, per server.
//
// The MPC model's two cost parameters (deck slides 12-20) are
//   L = max over rounds and servers of data received in a round, and
//   r = number of rounds.
// We meter both tuples and values (tuple-count × arity); join theory states
// bounds in tuples, matrix-multiplication theory in elements.
struct RoundCost {
  std::string label;
  std::vector<int64_t> tuples_received;
  std::vector<int64_t> values_received;
  std::vector<int64_t> tuples_sent;
  std::vector<int64_t> values_sent;

  explicit RoundCost(int num_servers, std::string label_text = "");

  int64_t MaxTuplesReceived() const;
  int64_t MaxValuesReceived() const;
  int64_t TotalTuplesReceived() const;
  int64_t TotalValuesReceived() const;
};

// Aggregated cost of an algorithm run: one RoundCost per round.
class CostReport {
 public:
  CostReport() = default;

  void AddRound(RoundCost cost) { rounds_.push_back(std::move(cost)); }
  void Clear() { rounds_.clear(); }

  int num_rounds() const { return static_cast<int>(rounds_.size()); }
  const std::vector<RoundCost>& rounds() const { return rounds_; }

  // L in tuples: max over rounds and servers of tuples received.
  int64_t MaxLoadTuples() const;
  // L in values (tuples × arity).
  int64_t MaxLoadValues() const;
  // C in tuples: total tuples communicated across all rounds and servers.
  int64_t TotalCommTuples() const;
  int64_t TotalCommValues() const;

  // Multi-line table: one row per round with its max/total loads.
  std::string ToString() const;

 private:
  std::vector<RoundCost> rounds_;
};

}  // namespace mpcqp

#endif  // MPCQP_MPC_COST_H_
