#ifndef MPCQP_MPC_EXCHANGE_H_
#define MPCQP_MPC_EXCHANGE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// Exchange (shuffle) primitives. Each moves a DistRelation's tuples to new
// servers and meters every tuple via the cluster. Each call is one MPC
// round unless the caller has a round open (RoundScope semantics), in which
// case it merges into that round.
//
// Execution model: morsel-driven two-phase index-routed exchange. Both
// parallel passes tile the input over (source, row-range) morsels of at
// most ClusterOptions::morsel_rows rows, claimed through the pool's
// work-stealing deques — the parallelism grain is decoupled from p, so a
// skewed fragment no longer serializes a round behind one task. Phase 1
// routes each morsel, computing per-tuple destinations and exact
// per-(morsel, dst) row counts — no tuple bytes move. A pass parallel
// over destinations turns the counts into src-major, row-ascending
// offsets and pre-sizes every destination fragment; phase 2 copies each
// tuple directly to its final position (with per-destination
// write-combining staging at large p); the per-(morsel, dst) ranges are
// disjoint, so the copies run lock-free and in parallel. The src-major
// layout reproduces sequential append order, so the output fragments and
// the metered costs are bit-identical for every thread count and every
// morsel size. Routing callbacks run concurrently: they must not mutate
// shared state (thread_local scratch is fine), and their decision for a
// tuple may depend only on the tuple itself (and, for the context-aware
// variant, its source coordinates) — never on how many tuples were
// visited before it.
//
// Broadcast is zero-copy: it materializes the src-major concatenation
// once and returns p copy-on-write handles to that single payload (a
// receiver that mutates its copy detaches transparently). The metered
// cost is unchanged — every server is still charged for receiving every
// tuple; sharing is a simulator-memory optimization, not a cost one.

// Identifies the tuple being routed: its source server and its row index
// within that source fragment. This is what callers hash when they need a
// per-tuple pseudo-random choice (e.g. picking a row of a heavy-hitter
// grid) that stays deterministic under concurrent routing.
struct RouteContext {
  int src = 0;
  int64_t row = 0;
};

// Re-partitions by hash of the key columns: tuple t goes to server
// h(t[key_cols]) mod p.
DistRelation HashPartition(Cluster& cluster, const DistRelation& rel,
                           const std::vector<int>& key_cols,
                           const HashFunction& hash, const std::string& label);

// Every server receives a copy of the whole relation.
DistRelation Broadcast(Cluster& cluster, const DistRelation& rel,
                       const std::string& label);

// Range-partitions by column `col`: tuple with value v goes to server i
// where splitters[i-1] <= v < splitters[i] (splitters sorted, size p-1).
DistRelation RangePartition(Cluster& cluster, const DistRelation& rel, int col,
                            const std::vector<Value>& splitters,
                            const std::string& label);

// Fully general routing: `targets(row, &dests)` appends the destination
// server ids for each tuple (possibly none or several — multicast). This is
// what HyperCube partitioning and heavy-hitter Cartesian grids build on.
DistRelation Route(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const Value* row, std::vector<int>& dests)>&
        targets,
    const std::string& label);

// As Route, but the callback additionally receives the tuple's source
// coordinates for deterministic per-tuple choices.
DistRelation RouteWithContext(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const RouteContext& ctx, const Value* row,
                             std::vector<int>& dests)>& targets,
    const std::string& label);

// Moves all tuples to server `dst` (e.g. collecting a sample to decide
// splitters). Returns the collected relation.
Relation GatherToServer(Cluster& cluster, const DistRelation& rel, int dst,
                        const std::string& label);

}  // namespace mpcqp

#endif  // MPCQP_MPC_EXCHANGE_H_
