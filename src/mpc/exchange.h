#ifndef MPCQP_MPC_EXCHANGE_H_
#define MPCQP_MPC_EXCHANGE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// Exchange (shuffle) primitives. Each moves a DistRelation's tuples to new
// servers and meters every tuple via the cluster. Each call is one MPC
// round unless the caller has a round open (RoundScope semantics), in which
// case it merges into that round.

// Re-partitions by hash of the key columns: tuple t goes to server
// h(t[key_cols]) mod p.
DistRelation HashPartition(Cluster& cluster, const DistRelation& rel,
                           const std::vector<int>& key_cols,
                           const HashFunction& hash, const std::string& label);

// Every server receives a copy of the whole relation.
DistRelation Broadcast(Cluster& cluster, const DistRelation& rel,
                       const std::string& label);

// Range-partitions by column `col`: tuple with value v goes to server i
// where splitters[i-1] <= v < splitters[i] (splitters sorted, size p-1).
DistRelation RangePartition(Cluster& cluster, const DistRelation& rel, int col,
                            const std::vector<Value>& splitters,
                            const std::string& label);

// Fully general routing: `targets(row, &dests)` appends the destination
// server ids for each tuple (possibly none or several — multicast). This is
// what HyperCube partitioning and heavy-hitter Cartesian grids build on.
DistRelation Route(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const Value* row, std::vector<int>& dests)>&
        targets,
    const std::string& label);

// Moves all tuples to server `dst` (e.g. collecting a sample to decide
// splitters). Returns the collected relation.
Relation GatherToServer(Cluster& cluster, const DistRelation& rel, int dst,
                        const std::string& label);

}  // namespace mpcqp

#endif  // MPCQP_MPC_EXCHANGE_H_
