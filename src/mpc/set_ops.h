#ifndef MPCQP_MPC_SET_OPS_H_
#define MPCQP_MPC_SET_OPS_H_

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// Distributed set operations, each one MPC round (hash partition by the
// whole tuple, then a local pass). They complete the relational algebra
// the join algorithms live in; DISTINCT in particular is the post-pass a
// projection query needs after any of the full-CQ joins.

// Removes duplicates globally. Output partitioned by tuple hash.
DistRelation DistributedDistinct(Cluster& cluster, const DistRelation& rel);

// Set union / intersection / difference of two same-arity relations
// (set semantics: inputs are deduplicated by the operation).
DistRelation DistributedUnion(Cluster& cluster, const DistRelation& a,
                              const DistRelation& b);
DistRelation DistributedIntersect(Cluster& cluster, const DistRelation& a,
                                  const DistRelation& b);
DistRelation DistributedDifference(Cluster& cluster, const DistRelation& a,
                                   const DistRelation& b);

}  // namespace mpcqp

#endif  // MPCQP_MPC_SET_OPS_H_
