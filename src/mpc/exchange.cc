#include "mpc/exchange.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "mpc/metrics.h"
#include "relation/columnar.h"

namespace mpcqp {

namespace {

// ---------------------------------------------------------------------------
// Morsel-driven two-phase index-routed exchange.
//
// The unit of parallelism is a morsel: a (source, row-range) tile of at
// most ClusterOptions::morsel_rows rows. The morsel decomposition derives
// from fragment sizes only — never from the thread count — and morsels are
// ordered by (src, begin), so per-morsel counts aggregate in a fixed order
// and the output layout is identical for every thread count AND every
// morsel size.
//
// Phase 1 (morsel-parallel, work-stealing): compute every tuple's
// destination(s) and tally exact per-(morsel, dst) row counts. No tuple
// bytes move.
//
// Between phases (parallel over destinations): for each destination d,
// walk the morsels in order turning counts into exact write offsets
// (src-major, row-ascending — the serial append order), meter the
// per-(src, d) message, and pre-size fragment d to its final size.
//
// Phase 2 (morsel-parallel, work-stealing): copy each tuple straight to
// its final position. Per-(morsel, dst) ranges are disjoint, so the
// copies need no locks. At large p the scattered per-tuple writes would
// touch p cache-line streams per task, so the copy stages rows per
// destination in small cache-resident write-combining blocks and flushes
// them with bulk memcpy.
// ---------------------------------------------------------------------------

// One (source, row-range) tile. `begin`/`end` are row indices within
// fragment `src`.
struct Morsel {
  int32_t src;
  int64_t begin;
  int64_t end;
};

// Cuts every non-empty fragment into tiles of at most `morsel_rows` rows,
// ordered by (src, begin). Depends only on fragment sizes and the morsel
// size, so the tiling — and everything whose aggregation order follows it
// — is thread-count independent.
std::vector<Morsel> TileSources(const DistRelation& rel, int64_t morsel_rows) {
  std::vector<Morsel> morsels;
  for (int src = 0; src < rel.num_servers(); ++src) {
    const int64_t n = rel.fragment(src).size();
    for (int64_t begin = 0; begin < n; begin += morsel_rows) {
      morsels.push_back(
          {src, begin, std::min<int64_t>(n, begin + morsel_rows)});
    }
  }
  return morsels;
}

// Destination stream count at or above which the copy phase stages rows in
// write-combining blocks instead of scattering per-tuple writes across all
// p fragments. Up to a couple hundred streams the scattered writes stay
// cache/TLB-resident and staging only adds bytes (measured: a 5-15% loss
// at p = 64); past that the p write streams thrash and staging wins.
constexpr int kWriteCombineMinDests = 256;
// Staging block footprint per destination. Cache-resident: p blocks of
// this size stay within L2 for the p this path targets.
constexpr int64_t kWriteCombineBlockBytes = 1024;

// Per-thread write-combining scratch. Pool workers are long-lived, so the
// buffers are allocated once per thread and reused across morsels and
// exchanges (the satellite fix for the per-task cursor/scratch churn).
struct WriteCombineScratch {
  std::vector<Value> rows;    // p blocks of block_rows rows each.
  std::vector<int32_t> fill;  // Rows currently staged per destination.
};
WriteCombineScratch& LocalWriteCombineScratch() {
  thread_local WriteCombineScratch scratch;
  return scratch;
}

// Copies `rows[i]` of `frag` (for i in [begin, end), destinations in
// `dests[i - begin]`) into the pre-sized fragments at `base`, advancing
// `cursor[dst]` (this morsel's private offset row). The write-combining
// variant stages per-destination blocks and flushes with bulk memcpy.
void CopyMorselDirect(const Value* in, const int32_t* dests, int64_t rows,
                      int arity, Value* const* base, int64_t* cursor) {
  for (int64_t i = 0; i < rows; ++i, in += arity) {
    const int dst = dests[i];
    std::memcpy(base[dst] + cursor[dst] * arity, in,
                static_cast<size_t>(arity) * sizeof(Value));
    ++cursor[dst];
  }
}

void CopyMorselWriteCombining(const Value* in, const int32_t* dests,
                              int64_t rows, int arity, int p,
                              Value* const* base, int64_t* cursor) {
  const int64_t block_rows =
      std::max<int64_t>(4, kWriteCombineBlockBytes /
                               (static_cast<int64_t>(arity) * sizeof(Value)));
  WriteCombineScratch& wc = LocalWriteCombineScratch();
  wc.rows.resize(static_cast<size_t>(p) * block_rows * arity);
  wc.fill.assign(p, 0);
  Value* const stage = wc.rows.data();
  int32_t* const fill = wc.fill.data();
  const auto flush = [&](int dst) {
    const int64_t staged = fill[dst];
    std::memcpy(base[dst] + cursor[dst] * arity,
                stage + dst * block_rows * arity,
                static_cast<size_t>(staged) * arity * sizeof(Value));
    cursor[dst] += staged;
    fill[dst] = 0;
  };
  for (int64_t i = 0; i < rows; ++i, in += arity) {
    const int dst = dests[i];
    std::memcpy(stage + (dst * block_rows + fill[dst]) * arity, in,
                static_cast<size_t>(arity) * sizeof(Value));
    if (++fill[dst] == block_rows) flush(dst);
  }
  for (int dst = 0; dst < p; ++dst) {
    if (fill[dst] > 0) flush(dst);
  }
}

// Router for exchanges where every tuple has exactly one destination
// (hash/range partition, gather). `target(src, frag, begin, end, dests)`
// computes the destinations of rows [begin, end) of fragment `src` into
// dests[0 .. end - begin); it is called concurrently from morsel tasks and
// its result for a row may depend only on that row and its coordinates.
template <typename BatchTargetFn>
DistRelation RouteSingle(Cluster& cluster, const DistRelation& rel,
                         const BatchTargetFn& target,
                         const std::string& label) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  MPCQP_CHECK_GT(rel.arity(), 0) << "cannot route nullary relations";
  RoundScope scope(cluster, label);

  const int arity = rel.arity();
  DistRelation out(arity, p);
  ThreadPool& pool = cluster.pool();
  const std::vector<Morsel> morsels =
      TileSources(rel, cluster.morsel_rows());
  const int64_t num_morsels = static_cast<int64_t>(morsels.size());

  // Row offset of each fragment in the flat destination array.
  std::vector<int64_t> row_base(static_cast<size_t>(p) + 1, 0);
  for (int src = 0; src < p; ++src) {
    row_base[src + 1] = row_base[src] + rel.fragment(src).size();
  }
  const int64_t total_rows = row_base[p];
  auto dests = std::make_unique_for_overwrite<int32_t[]>(
      static_cast<size_t>(std::max<int64_t>(total_rows, 1)));

  // Phase 1: destinations + per-(morsel, dst) counts, one work-stealing
  // task per morsel.
  std::vector<int64_t> counts(static_cast<size_t>(num_morsels) * p, 0);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kRoute);
    pool.ParallelForGrained(num_morsels, 1, [&](int64_t mb, int64_t me) {
      for (int64_t m = mb; m < me; ++m) {
        const Morsel& mo = morsels[m];
        MPCQP_TRACE_SCOPE_ARG("route morsel", "exchange", m);
        const Relation& frag = rel.fragment(mo.src);
        int32_t* const d = dests.get() + row_base[mo.src] + mo.begin;
        const int64_t rows = mo.end - mo.begin;
        target(mo.src, frag, mo.begin, mo.end, d);
        int64_t* const cnt = counts.data() + m * p;
        for (int64_t i = 0; i < rows; ++i) {
          const int32_t dst = d[i];
          MPCQP_CHECK_GE(dst, 0);
          MPCQP_CHECK_LT(dst, p);
          ++cnt[dst];
        }
      }
    });
  }

  // Offsets + presize, parallel over destinations: for destination d, walk
  // the morsels in (src, begin) order so rows land src-major and
  // row-ascending — the serial append order — for any morsel size; meter
  // each (src, d) message as its total closes.
  std::vector<int64_t> offsets(static_cast<size_t>(num_morsels) * p);
  std::vector<Value*> base(p);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCount);
    MPCQP_TRACE_SCOPE("presize", "exchange");
    pool.ParallelFor(p, [&](int64_t task) {
      const int dst = static_cast<int>(task);
      int64_t total = 0;
      int64_t src_total = 0;
      for (int64_t m = 0; m < num_morsels; ++m) {
        offsets[m * p + dst] = total;
        total += counts[m * p + dst];
        src_total += counts[m * p + dst];
        if (m + 1 == num_morsels || morsels[m + 1].src != morsels[m].src) {
          if (src_total > 0) {
            cluster.RecordMessage(morsels[m].src, dst, src_total,
                                  src_total * arity);
          }
          src_total = 0;
        }
      }
      base[dst] = out.fragment(dst).ResizeRowsForOverwrite(total);
      cluster.metrics().RecordFragmentRows(total);
    });
  }

  // Phase 2: bulk copy into disjoint pre-sized ranges. Each morsel's
  // offsets row doubles as its private cursor — no per-task allocation.
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCopy);
    const bool write_combine = p >= kWriteCombineMinDests;
    pool.ParallelForGrained(num_morsels, 1, [&](int64_t mb, int64_t me) {
      for (int64_t m = mb; m < me; ++m) {
        const Morsel& mo = morsels[m];
        MPCQP_TRACE_SCOPE_ARG("copy morsel", "exchange", m);
        const Relation& frag = rel.fragment(mo.src);
        const Value* in = frag.row(0) + mo.begin * arity;
        const int32_t* const d = dests.get() + row_base[mo.src] + mo.begin;
        int64_t* const cursor = offsets.data() + m * p;
        const int64_t rows = mo.end - mo.begin;
        if (write_combine) {
          CopyMorselWriteCombining(in, d, rows, arity, p, base.data(),
                                   cursor);
        } else {
          CopyMorselDirect(in, d, rows, arity, base.data(), cursor);
        }
      }
    });
  }
  return out;
}

// Router for exchanges where a tuple may go to zero or several servers
// (multicast). Same morsel phases; each morsel stores a flat destination
// list plus per-row end indices (relative to the morsel).
template <typename MultiTargetFn>
DistRelation RouteMulti(Cluster& cluster, const DistRelation& rel,
                        const MultiTargetFn& targets,
                        const std::string& label) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  MPCQP_CHECK_GT(rel.arity(), 0) << "cannot route nullary relations";
  RoundScope scope(cluster, label);

  const int arity = rel.arity();
  DistRelation out(arity, p);
  ThreadPool& pool = cluster.pool();
  const std::vector<Morsel> morsels =
      TileSources(rel, cluster.morsel_rows());
  const int64_t num_morsels = static_cast<int64_t>(morsels.size());

  // Phase 1: per morsel, a flat destination list plus per-row end indices.
  std::vector<std::vector<int32_t>> flat(morsels.size());
  std::vector<std::vector<int64_t>> row_end(morsels.size());
  std::vector<int64_t> counts(static_cast<size_t>(num_morsels) * p, 0);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kRoute);
    pool.ParallelForGrained(num_morsels, 1, [&](int64_t mb, int64_t me) {
      std::vector<int> row_dests;  // Reused across the block's morsels.
      for (int64_t m = mb; m < me; ++m) {
        const Morsel& mo = morsels[m];
        MPCQP_TRACE_SCOPE_ARG("route morsel", "exchange", m);
        const Relation& frag = rel.fragment(mo.src);
        std::vector<int32_t>& my_flat = flat[m];
        std::vector<int64_t>& ends = row_end[m];
        ends.resize(mo.end - mo.begin);
        // Floor: one destination per row (multicasts grow past it once).
        my_flat.reserve(mo.end - mo.begin);
        int64_t* const cnt = counts.data() + m * p;
        RouteContext ctx;
        ctx.src = mo.src;
        for (int64_t i = mo.begin; i < mo.end; ++i) {
          ctx.row = i;
          row_dests.clear();
          targets(ctx, frag.row(i), row_dests);
          for (int dst : row_dests) {
            MPCQP_CHECK_GE(dst, 0);
            MPCQP_CHECK_LT(dst, p);
            my_flat.push_back(static_cast<int32_t>(dst));
            ++cnt[dst];
          }
          ends[i - mo.begin] = static_cast<int64_t>(my_flat.size());
        }
      }
    });
  }

  std::vector<int64_t> offsets(static_cast<size_t>(num_morsels) * p);
  std::vector<Value*> base(p);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCount);
    MPCQP_TRACE_SCOPE("presize", "exchange");
    pool.ParallelFor(p, [&](int64_t task) {
      const int dst = static_cast<int>(task);
      int64_t total = 0;
      int64_t src_total = 0;
      for (int64_t m = 0; m < num_morsels; ++m) {
        offsets[m * p + dst] = total;
        total += counts[m * p + dst];
        src_total += counts[m * p + dst];
        if (m + 1 == num_morsels || morsels[m + 1].src != morsels[m].src) {
          if (src_total > 0) {
            cluster.RecordMessage(morsels[m].src, dst, src_total,
                                  src_total * arity);
          }
          src_total = 0;
        }
      }
      base[dst] = out.fragment(dst).ResizeRowsForOverwrite(total);
      cluster.metrics().RecordFragmentRows(total);
    });
  }

  // Phase 2.
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCopy);
    const bool write_combine = p >= kWriteCombineMinDests;
    pool.ParallelForGrained(num_morsels, 1, [&](int64_t mb, int64_t me) {
      for (int64_t m = mb; m < me; ++m) {
        const Morsel& mo = morsels[m];
        MPCQP_TRACE_SCOPE_ARG("copy morsel", "exchange", m);
        const Relation& frag = rel.fragment(mo.src);
        const std::vector<int32_t>& my_flat = flat[m];
        const std::vector<int64_t>& ends = row_end[m];
        int64_t* const cursor = offsets.data() + m * p;
        if (write_combine) {
          // Stage per-destination blocks exactly as the single-target
          // copy does, but walking the flat multicast list.
          const int64_t block_rows = std::max<int64_t>(
              4, kWriteCombineBlockBytes /
                     (static_cast<int64_t>(arity) * sizeof(Value)));
          WriteCombineScratch& wc = LocalWriteCombineScratch();
          wc.rows.resize(static_cast<size_t>(p) * block_rows * arity);
          wc.fill.assign(p, 0);
          Value* const stage = wc.rows.data();
          int32_t* const fill = wc.fill.data();
          const auto flush = [&](int dst) {
            std::memcpy(base[dst] + cursor[dst] * arity,
                        stage + dst * block_rows * arity,
                        static_cast<size_t>(fill[dst]) * arity *
                            sizeof(Value));
            cursor[dst] += fill[dst];
            fill[dst] = 0;
          };
          const Value* in = frag.row(0) + mo.begin * arity;
          int64_t j = 0;
          for (int64_t i = 0; i < mo.end - mo.begin; ++i, in += arity) {
            for (; j < ends[i]; ++j) {
              const int dst = my_flat[j];
              std::memcpy(stage + (dst * block_rows + fill[dst]) * arity,
                          in, static_cast<size_t>(arity) * sizeof(Value));
              if (++fill[dst] == block_rows) flush(dst);
            }
          }
          for (int dst = 0; dst < p; ++dst) {
            if (fill[dst] > 0) flush(dst);
          }
        } else {
          const Value* in = frag.row(0) + mo.begin * arity;
          int64_t j = 0;
          for (int64_t i = 0; i < mo.end - mo.begin; ++i, in += arity) {
            for (; j < ends[i]; ++j) {
              const int dst = my_flat[j];
              std::memcpy(base[dst] + cursor[dst] * arity, in,
                          static_cast<size_t>(arity) * sizeof(Value));
              ++cursor[dst];
            }
          }
        }
      }
    });
  }
  return out;
}

}  // namespace

DistRelation HashPartition(Cluster& cluster, const DistRelation& rel,
                           const std::vector<int>& key_cols,
                           const HashFunction& hash,
                           const std::string& label) {
  for (int c : key_cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, rel.arity());
  }
  const int p = cluster.num_servers();
  if (key_cols.empty()) {
    // Empty key: every row belongs to one (scalar) group, so all rows
    // route to that group's hash owner. HashSpan over zero columns is the
    // hash function's deterministic seed constant — same owner on every
    // server, chosen by the draw like any other key.
    const int owner = static_cast<int>(
        (static_cast<unsigned __int128>(hash.HashSpan(nullptr, 0)) * p) >>
        64);
    return RouteSingle(
        cluster, rel,
        [owner](int /*src*/, const Relation& /*frag*/, int64_t begin,
                int64_t end, int32_t* dests) {
          std::fill(dests, dests + (end - begin),
                    static_cast<int32_t>(owner));
        },
        label);
  }
  // Single-column keys route through one of three physical plans, picked
  // by ClusterOptions::layout (destinations — and therefore outputs and
  // CostReports — are byte-identical for all three, since HashSpan(v, 1)
  // == Hash(v) == HashMany element-wise and Bucket == BucketMany):
  //   kRow            the seed per-row loop (arity-strided loads, one
  //                   HashSpan per row) — via the generic path below;
  //   kColumnar/kAuto over the UseColumnarRoute thresholds: extract the
  //                   key column into one contiguous buffer (metered as
  //                   kTranspose), then a pure vectorized BucketMany;
  //   kAuto otherwise a fused per-morsel gather + batched BucketMany —
  //                   columnar hashing without the extraction pass, the
  //                   right trade below the thresholds.
  // An arity-1 relation is already a contiguous column: direct BucketMany
  // under every mode.
  if (key_cols.size() == 1 && rel.arity() == 1) {
    return RouteSingle(
        cluster, rel,
        [&hash, p](int /*src*/, const Relation& frag, int64_t begin,
                   int64_t end, int32_t* dests) {
          hash.BucketMany(frag.data().data() + begin, end - begin, p, dests);
        },
        label);
  }
  if (key_cols.size() == 1 && cluster.layout() != LayoutMode::kRow) {
    const int col = key_cols.front();
    int64_t total_rows = 0;
    for (int src = 0; src < rel.num_servers(); ++src) {
      total_rows += rel.fragment(src).size();
    }
    if (UseColumnarRoute(cluster.layout(), rel.arity(), total_rows)) {
      // Columnar route: extract the key column of every fragment into one
      // contiguous buffer first (morsel-parallel, metered as kTranspose),
      // then the route phase is a pure unit-stride BucketMany — the
      // splitmix loop vectorizes with no arity-stride gathers left in it.
      // Destinations are computed from the same values with the same hash,
      // and phase 2 still copies the row-major payloads, so outputs and
      // CostReports are byte-identical to the other plans.
      RoundScope scope(cluster, label);
      std::vector<int64_t> row_base(static_cast<size_t>(p) + 1, 0);
      for (int src = 0; src < p; ++src) {
        row_base[src + 1] = row_base[src] + rel.fragment(src).size();
      }
      auto keys = std::make_unique_for_overwrite<Value[]>(
          static_cast<size_t>(std::max<int64_t>(total_rows, 1)));
      {
        ScopedPhaseTimer phase(cluster.metrics(), Phase::kTranspose);
        const std::vector<Morsel> morsels =
            TileSources(rel, cluster.morsel_rows());
        cluster.pool().ParallelForGrained(
            static_cast<int64_t>(morsels.size()), 1,
            [&](int64_t mb, int64_t me) {
              for (int64_t m = mb; m < me; ++m) {
                const Morsel& mo = morsels[m];
                const Relation& frag = rel.fragment(mo.src);
                GatherKeyColumn(frag.data().data(), frag.arity(), col,
                                mo.begin, mo.end,
                                keys.get() + row_base[mo.src] + mo.begin);
              }
            });
      }
      const Value* const key_base = keys.get();
      const int64_t* const bases = row_base.data();
      return RouteSingle(
          cluster, rel,
          [&hash, p, key_base, bases](int src, const Relation& /*frag*/,
                                      int64_t begin, int64_t end,
                                      int32_t* dests) {
            hash.BucketMany(key_base + bases[src] + begin, end - begin, p,
                            dests);
          },
          label);
    }
    // Fused path (kAuto below the extraction thresholds): gather the
    // column per morsel and bucket the whole morsel in one batched,
    // vectorizable pass.
    return RouteSingle(
        cluster, rel,
        [&hash, p, col](int /*src*/, const Relation& frag, int64_t begin,
                        int64_t end, int32_t* dests) {
          const int64_t rows = end - begin;
          // Per-thread scratch: morsel tasks run concurrently.
          thread_local std::vector<Value> keys;
          keys.resize(static_cast<size_t>(rows));
          GatherKeyColumn(frag.data().data(), frag.arity(), col, begin, end,
                          keys.data());
          hash.BucketMany(keys.data(), rows, p, dests);
        },
        label);
  }
  const auto bucket = [p](uint64_t h) {
    return static_cast<int>((static_cast<unsigned __int128>(h) * p) >> 64);
  };
  return RouteSingle(
      cluster, rel,
      [&, bucket](int /*src*/, const Relation& frag, int64_t begin,
                  int64_t end, int32_t* dests) {
        thread_local std::vector<Value> key;
        key.resize(key_cols.size());
        for (int64_t i = begin; i < end; ++i) {
          const Value* row = frag.row(i);
          for (size_t k = 0; k < key_cols.size(); ++k) {
            key[k] = row[key_cols[k]];
          }
          dests[i - begin] = static_cast<int32_t>(bucket(
              hash.HashSpan(key.data(), static_cast<int>(key.size()))));
        }
      },
      label);
}

DistRelation Broadcast(Cluster& cluster, const DistRelation& rel,
                       const std::string& label) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  MPCQP_CHECK_GT(rel.arity(), 0) << "cannot route nullary relations";
  RoundScope scope(cluster, label);

  const int arity = rel.arity();

  // Every destination receives the same src-major concatenation, so build
  // it once and hand out p copy-on-write handles to the one payload.
  Relation all(arity);
  int nonempty = 0;
  int last_nonempty = -1;
  int64_t total = 0;
  std::vector<int64_t> offsets(p);
  for (int src = 0; src < p; ++src) {
    const int64_t n = rel.fragment(src).size();
    offsets[src] = total;
    if (n > 0) {
      ++nonempty;
      last_nonempty = src;
      total += n;
    }
  }
  if (nonempty == 1) {
    // One source (a gathered sample, say): its fragment IS the broadcast
    // payload. Zero bytes move.
    all = rel.fragment(last_nonempty);
  } else if (nonempty > 1) {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCopy);
    MPCQP_TRACE_SCOPE("broadcast payload", "exchange");
    Value* base = all.ResizeRowsForOverwrite(total);
    // Tile the concatenation over morsels so one huge fragment does not
    // serialize the payload build.
    const std::vector<Morsel> morsels =
        TileSources(rel, cluster.morsel_rows());
    cluster.pool().ParallelForGrained(
        static_cast<int64_t>(morsels.size()), 1,
        [&](int64_t mb, int64_t me) {
          for (int64_t m = mb; m < me; ++m) {
            const Morsel& mo = morsels[m];
            const Relation& frag = rel.fragment(mo.src);
            std::memcpy(
                base + (offsets[mo.src] + mo.begin) * arity,
                frag.row(0) + mo.begin * arity,
                static_cast<size_t>(mo.end - mo.begin) * arity *
                    sizeof(Value));
          }
        });
  }
  cluster.metrics().RecordFragmentRows(total);

  // Metering is unchanged: every server still receives every tuple; the
  // shared payload is a simulator-memory optimization, not a cost one.
  // Parallel over destinations (integer sums — order-free).
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCount);
    cluster.pool().ParallelFor(p, [&](int64_t task) {
      const int dst = static_cast<int>(task);
      for (int src = 0; src < p; ++src) {
        const int64_t n = rel.fragment(src).size();
        if (n == 0) continue;
        cluster.RecordMessage(src, dst, n, n * arity);
      }
    });
  }

  DistRelation out(arity, p);
  for (int dst = 0; dst < p; ++dst) out.fragment(dst) = all;
  return out;
}

DistRelation RangePartition(Cluster& cluster, const DistRelation& rel, int col,
                            const std::vector<Value>& splitters,
                            const std::string& label) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  MPCQP_CHECK_EQ(static_cast<int>(splitters.size()) + 1,
                 cluster.num_servers());
  MPCQP_CHECK(std::is_sorted(splitters.begin(), splitters.end()));
  return RouteSingle(
      cluster, rel,
      [&](int /*src*/, const Relation& frag, int64_t begin, int64_t end,
          int32_t* dests) {
        const int arity = frag.arity();
        const Value* in = frag.row(0) + begin * arity + col;
        for (int64_t i = 0; i < end - begin; ++i, in += arity) {
          const auto it =
              std::upper_bound(splitters.begin(), splitters.end(), *in);
          dests[i] = static_cast<int32_t>(it - splitters.begin());
        }
      },
      label);
}

DistRelation Route(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const Value* row, std::vector<int>& dests)>&
        targets,
    const std::string& label) {
  return RouteMulti(
      cluster, rel,
      [&targets](const RouteContext&, const Value* row,
                 std::vector<int>& dests) { targets(row, dests); },
      label);
}

DistRelation RouteWithContext(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const RouteContext& ctx, const Value* row,
                             std::vector<int>& dests)>& targets,
    const std::string& label) {
  return RouteMulti(cluster, rel, targets, label);
}

Relation GatherToServer(Cluster& cluster, const DistRelation& rel, int dst,
                        const std::string& label) {
  MPCQP_CHECK_GE(dst, 0);
  MPCQP_CHECK_LT(dst, cluster.num_servers());
  DistRelation gathered = RouteSingle(
      cluster, rel,
      [dst](int /*src*/, const Relation&, int64_t begin, int64_t end,
            int32_t* dests) {
        std::fill(dests, dests + (end - begin), static_cast<int32_t>(dst));
      },
      label);
  return std::move(gathered.fragment(dst));
}

}  // namespace mpcqp
