#include "mpc/exchange.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"

namespace mpcqp {

namespace {

using RouteTargetsFn = std::function<void(
    const RouteContext& ctx, const Value* row, std::vector<int>& dests)>;

// Shared implementation: route each tuple of each source fragment to the
// destinations chosen by `targets`, metering per (src, dst) pair.
//
// The parallel path routes each source fragment in its own pool task into
// private per-(src, dst) buffers and then concatenates them in src-major
// order, which reproduces the serial path's append order exactly: output
// fragments and costs are bit-identical for every thread count.
DistRelation RouteImpl(Cluster& cluster, const DistRelation& rel,
                       const RouteTargetsFn& targets,
                       const std::string& label) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  MPCQP_CHECK_GT(rel.arity(), 0) << "cannot route nullary relations";
  RoundScope scope(cluster, label);

  DistRelation out(rel.arity(), p);
  ThreadPool& pool = cluster.pool();

  if (pool.num_threads() <= 1 || p <= 1) {
    // Serial fast path: append straight into the output fragments. Meter
    // with a per-source aggregation matrix to keep RecordMessage calls off
    // the per-tuple path.
    std::vector<int64_t> sent_to(p, 0);
    std::vector<int> dests;
    RouteContext ctx;
    for (int src = 0; src < p; ++src) {
      std::fill(sent_to.begin(), sent_to.end(), 0);
      const Relation& frag = rel.fragment(src);
      ctx.src = src;
      for (int64_t i = 0; i < frag.size(); ++i) {
        ctx.row = i;
        const Value* row = frag.row(i);
        dests.clear();
        targets(ctx, row, dests);
        for (int dst : dests) {
          MPCQP_CHECK_GE(dst, 0);
          MPCQP_CHECK_LT(dst, p);
          out.fragment(dst).AppendRow(row);
          ++sent_to[dst];
        }
      }
      for (int dst = 0; dst < p; ++dst) {
        if (sent_to[dst] > 0) {
          cluster.RecordMessage(src, dst, sent_to[dst],
                                sent_to[dst] * rel.arity());
        }
      }
    }
    return out;
  }

  // Parallel path, phase 1: one task per source server fills its private
  // buffer row bufs[src][0..p).
  std::vector<std::vector<Relation>> bufs(p);
  pool.ParallelFor(p, [&](int64_t task) {
    const int src = static_cast<int>(task);
    std::vector<Relation>& mine = bufs[src];
    mine.assign(p, Relation(rel.arity()));
    std::vector<int64_t> sent_to(p, 0);
    std::vector<int> dests;
    const Relation& frag = rel.fragment(src);
    RouteContext ctx;
    ctx.src = src;
    for (int64_t i = 0; i < frag.size(); ++i) {
      ctx.row = i;
      const Value* row = frag.row(i);
      dests.clear();
      targets(ctx, row, dests);
      for (int dst : dests) {
        MPCQP_CHECK_GE(dst, 0);
        MPCQP_CHECK_LT(dst, p);
        mine[dst].AppendRow(row);
        ++sent_to[dst];
      }
    }
    for (int dst = 0; dst < p; ++dst) {
      if (sent_to[dst] > 0) {
        cluster.RecordMessage(src, dst, sent_to[dst],
                              sent_to[dst] * rel.arity());
      }
    }
  });

  // Phase 2: one task per destination concatenates its buffers src-major.
  pool.ParallelFor(p, [&](int64_t task) {
    const int dst = static_cast<int>(task);
    Relation& merged = out.fragment(dst);
    int64_t total = 0;
    for (int src = 0; src < p; ++src) total += bufs[src][dst].size();
    merged.Reserve(total);
    for (int src = 0; src < p; ++src) merged.Append(bufs[src][dst]);
  });
  return out;
}

}  // namespace

DistRelation HashPartition(Cluster& cluster, const DistRelation& rel,
                           const std::vector<int>& key_cols,
                           const HashFunction& hash,
                           const std::string& label) {
  MPCQP_CHECK(!key_cols.empty());
  for (int c : key_cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, rel.arity());
  }
  const int p = cluster.num_servers();
  return RouteImpl(
      cluster, rel,
      [&](const RouteContext&, const Value* row, std::vector<int>& dests) {
        // Per-thread scratch: the callback runs concurrently on workers.
        thread_local std::vector<Value> key;
        key.resize(key_cols.size());
        for (size_t k = 0; k < key_cols.size(); ++k) key[k] = row[key_cols[k]];
        const uint64_t h =
            hash.HashSpan(key.data(), static_cast<int>(key.size()));
        dests.push_back(static_cast<int>(
            (static_cast<unsigned __int128>(h) * p) >> 64));
      },
      label);
}

DistRelation Broadcast(Cluster& cluster, const DistRelation& rel,
                       const std::string& label) {
  const int p = cluster.num_servers();
  return RouteImpl(
      cluster, rel,
      [p](const RouteContext&, const Value*, std::vector<int>& dests) {
        for (int s = 0; s < p; ++s) dests.push_back(s);
      },
      label);
}

DistRelation RangePartition(Cluster& cluster, const DistRelation& rel, int col,
                            const std::vector<Value>& splitters,
                            const std::string& label) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  MPCQP_CHECK_EQ(static_cast<int>(splitters.size()) + 1,
                 cluster.num_servers());
  MPCQP_CHECK(std::is_sorted(splitters.begin(), splitters.end()));
  return RouteImpl(
      cluster, rel,
      [&](const RouteContext&, const Value* row, std::vector<int>& dests) {
        const auto it =
            std::upper_bound(splitters.begin(), splitters.end(), row[col]);
        dests.push_back(static_cast<int>(it - splitters.begin()));
      },
      label);
}

DistRelation Route(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const Value* row, std::vector<int>& dests)>&
        targets,
    const std::string& label) {
  return RouteImpl(
      cluster, rel,
      [&targets](const RouteContext&, const Value* row,
                 std::vector<int>& dests) { targets(row, dests); },
      label);
}

DistRelation RouteWithContext(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const RouteContext& ctx, const Value* row,
                             std::vector<int>& dests)>& targets,
    const std::string& label) {
  return RouteImpl(cluster, rel, targets, label);
}

Relation GatherToServer(Cluster& cluster, const DistRelation& rel, int dst,
                        const std::string& label) {
  DistRelation gathered = RouteImpl(
      cluster, rel,
      [dst](const RouteContext&, const Value*, std::vector<int>& dests) {
        dests.push_back(dst);
      },
      label);
  return gathered.fragment(dst);
}

}  // namespace mpcqp
