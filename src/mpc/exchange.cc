#include "mpc/exchange.h"

#include <algorithm>

#include "common/check.h"

namespace mpcqp {

namespace {

// Shared implementation: route each tuple of each source fragment to the
// destinations chosen by `targets`, metering per (src, dst) pair.
DistRelation RouteImpl(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const Value* row, std::vector<int>& dests)>&
        targets,
    const std::string& label) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  MPCQP_CHECK_GT(rel.arity(), 0) << "cannot route nullary relations";
  RoundScope scope(cluster, label);

  DistRelation out(rel.arity(), p);
  // Meter with a per-source aggregation matrix to keep RecordMessage calls
  // off the per-tuple path.
  std::vector<int64_t> sent_to(p, 0);
  std::vector<int> dests;
  for (int src = 0; src < p; ++src) {
    std::fill(sent_to.begin(), sent_to.end(), 0);
    const Relation& frag = rel.fragment(src);
    for (int64_t i = 0; i < frag.size(); ++i) {
      const Value* row = frag.row(i);
      dests.clear();
      targets(row, dests);
      for (int dst : dests) {
        MPCQP_CHECK_GE(dst, 0);
        MPCQP_CHECK_LT(dst, p);
        out.fragment(dst).AppendRow(row);
        ++sent_to[dst];
      }
    }
    for (int dst = 0; dst < p; ++dst) {
      if (sent_to[dst] > 0) {
        cluster.RecordMessage(src, dst, sent_to[dst],
                              sent_to[dst] * rel.arity());
      }
    }
  }
  return out;
}

}  // namespace

DistRelation HashPartition(Cluster& cluster, const DistRelation& rel,
                           const std::vector<int>& key_cols,
                           const HashFunction& hash,
                           const std::string& label) {
  MPCQP_CHECK(!key_cols.empty());
  for (int c : key_cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, rel.arity());
  }
  const int p = cluster.num_servers();
  std::vector<Value> key(key_cols.size());
  return RouteImpl(
      cluster, rel,
      [&](const Value* row, std::vector<int>& dests) {
        for (size_t k = 0; k < key_cols.size(); ++k) key[k] = row[key_cols[k]];
        const uint64_t h =
            hash.HashSpan(key.data(), static_cast<int>(key.size()));
        dests.push_back(static_cast<int>(
            (static_cast<unsigned __int128>(h) * p) >> 64));
      },
      label);
}

DistRelation Broadcast(Cluster& cluster, const DistRelation& rel,
                       const std::string& label) {
  const int p = cluster.num_servers();
  return RouteImpl(
      cluster, rel,
      [p](const Value*, std::vector<int>& dests) {
        for (int s = 0; s < p; ++s) dests.push_back(s);
      },
      label);
}

DistRelation RangePartition(Cluster& cluster, const DistRelation& rel, int col,
                            const std::vector<Value>& splitters,
                            const std::string& label) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  MPCQP_CHECK_EQ(static_cast<int>(splitters.size()) + 1,
                 cluster.num_servers());
  MPCQP_CHECK(std::is_sorted(splitters.begin(), splitters.end()));
  return RouteImpl(
      cluster, rel,
      [&](const Value* row, std::vector<int>& dests) {
        const auto it =
            std::upper_bound(splitters.begin(), splitters.end(), row[col]);
        dests.push_back(static_cast<int>(it - splitters.begin()));
      },
      label);
}

DistRelation Route(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const Value* row, std::vector<int>& dests)>&
        targets,
    const std::string& label) {
  return RouteImpl(cluster, rel, targets, label);
}

Relation GatherToServer(Cluster& cluster, const DistRelation& rel, int dst,
                        const std::string& label) {
  DistRelation gathered = RouteImpl(
      cluster, rel,
      [dst](const Value*, std::vector<int>& dests) { dests.push_back(dst); },
      label);
  return gathered.fragment(dst);
}

}  // namespace mpcqp
