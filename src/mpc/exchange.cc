#include "mpc/exchange.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "mpc/metrics.h"

namespace mpcqp {

namespace {

// ---------------------------------------------------------------------------
// Two-phase index-routed exchange.
//
// Phase 1 (parallel over sources): compute every tuple's destination(s),
// tally exact per-(src, dst) row counts, and meter. No tuple bytes move.
//
// Between phases (serial, O(p^2)): turn the count matrix into src-major
// offsets and pre-size each destination fragment to its exact final size.
//
// Phase 2 (parallel over sources): copy each tuple straight to its final
// position — base[dst] + offset[src][dst] onward, in source row order. The
// per-(src, dst) ranges are disjoint, so the copies need no locks, and the
// src-major layout reproduces the serial append order exactly: output
// fragments and costs are bit-identical for every thread count.
// ---------------------------------------------------------------------------

// Router for exchanges where every tuple has exactly one destination
// (hash/range partition, gather). `target(ctx, row)` returns the
// destination server; it is called concurrently from per-source tasks.
template <typename SingleTargetFn>
DistRelation RouteSingle(Cluster& cluster, const DistRelation& rel,
                         const SingleTargetFn& target,
                         const std::string& label) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  MPCQP_CHECK_GT(rel.arity(), 0) << "cannot route nullary relations";
  RoundScope scope(cluster, label);

  const int arity = rel.arity();
  DistRelation out(arity, p);
  ThreadPool& pool = cluster.pool();

  // Phase 1: destinations + counts, one task per source.
  std::vector<std::vector<int32_t>> dest_of(p);
  std::vector<int64_t> counts(static_cast<size_t>(p) * p, 0);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kRoute);
    pool.ParallelFor(p, [&](int64_t task) {
      const int src = static_cast<int>(task);
      MPCQP_TRACE_SCOPE_ARG("route", "exchange", src);
      const Relation& frag = rel.fragment(src);
      std::vector<int32_t>& dests = dest_of[src];
      dests.resize(frag.size());
      int64_t* cnt = counts.data() + static_cast<size_t>(src) * p;
      RouteContext ctx;
      ctx.src = src;
      const int64_t n = frag.size();
      for (int64_t i = 0; i < n; ++i) {
        ctx.row = i;
        const int dst = target(ctx, frag.row(i));
        MPCQP_CHECK_GE(dst, 0);
        MPCQP_CHECK_LT(dst, p);
        dests[i] = dst;
        ++cnt[dst];
      }
      for (int dst = 0; dst < p; ++dst) {
        if (cnt[dst] > 0) {
          cluster.RecordMessage(src, dst, cnt[dst], cnt[dst] * arity);
        }
      }
    });
  }

  // Offsets: rows from src land in fragment(dst) at [offset[src][dst], ...)
  // — src-major, so the layout matches sequential append order.
  std::vector<int64_t> offsets(static_cast<size_t>(p) * p);
  std::vector<Value*> base(p);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCount);
    MPCQP_TRACE_SCOPE("presize", "exchange");
    int64_t peak = 0;
    for (int dst = 0; dst < p; ++dst) {
      int64_t total = 0;
      for (int src = 0; src < p; ++src) {
        offsets[static_cast<size_t>(src) * p + dst] = total;
        total += counts[static_cast<size_t>(src) * p + dst];
      }
      base[dst] = out.fragment(dst).ResizeRowsForOverwrite(total);
      peak = std::max(peak, total);
    }
    cluster.metrics().RecordFragmentRows(peak);
  }

  // Phase 2: bulk copy into disjoint pre-sized ranges.
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCopy);
    pool.ParallelFor(p, [&](int64_t task) {
      const int src = static_cast<int>(task);
      MPCQP_TRACE_SCOPE_ARG("copy", "exchange", src);
      const Relation& frag = rel.fragment(src);
      if (frag.empty()) return;
      std::vector<int64_t> cursor(
          offsets.begin() + static_cast<size_t>(src) * p,
          offsets.begin() + static_cast<size_t>(src + 1) * p);
      const std::vector<int32_t>& dests = dest_of[src];
      const Value* in = frag.row(0);
      const int64_t n = frag.size();
      for (int64_t i = 0; i < n; ++i, in += arity) {
        const int dst = dests[i];
        std::memcpy(base[dst] + cursor[dst] * arity, in,
                    static_cast<size_t>(arity) * sizeof(Value));
        ++cursor[dst];
      }
    });
  }
  return out;
}

// Router for exchanges where a tuple may go to zero or several servers
// (multicast). Same two phases; per-row destination lists are stored flat.
template <typename MultiTargetFn>
DistRelation RouteMulti(Cluster& cluster, const DistRelation& rel,
                        const MultiTargetFn& targets,
                        const std::string& label) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  MPCQP_CHECK_GT(rel.arity(), 0) << "cannot route nullary relations";
  RoundScope scope(cluster, label);

  const int arity = rel.arity();
  DistRelation out(arity, p);
  ThreadPool& pool = cluster.pool();

  // Phase 1: per source, a flat destination list plus per-row end indices.
  std::vector<std::vector<int32_t>> dest_of(p);
  std::vector<std::vector<int64_t>> row_end(p);
  std::vector<int64_t> counts(static_cast<size_t>(p) * p, 0);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kRoute);
    pool.ParallelFor(p, [&](int64_t task) {
      const int src = static_cast<int>(task);
      MPCQP_TRACE_SCOPE_ARG("route", "exchange", src);
      const Relation& frag = rel.fragment(src);
      std::vector<int32_t>& flat = dest_of[src];
      std::vector<int64_t>& ends = row_end[src];
      ends.resize(frag.size());
      int64_t* cnt = counts.data() + static_cast<size_t>(src) * p;
      std::vector<int> dests;
      RouteContext ctx;
      ctx.src = src;
      const int64_t n = frag.size();
      for (int64_t i = 0; i < n; ++i) {
        ctx.row = i;
        dests.clear();
        targets(ctx, frag.row(i), dests);
        for (int dst : dests) {
          MPCQP_CHECK_GE(dst, 0);
          MPCQP_CHECK_LT(dst, p);
          flat.push_back(dst);
          ++cnt[dst];
        }
        ends[i] = static_cast<int64_t>(flat.size());
      }
      for (int dst = 0; dst < p; ++dst) {
        if (cnt[dst] > 0) {
          cluster.RecordMessage(src, dst, cnt[dst], cnt[dst] * arity);
        }
      }
    });
  }

  std::vector<int64_t> offsets(static_cast<size_t>(p) * p);
  std::vector<Value*> base(p);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCount);
    MPCQP_TRACE_SCOPE("presize", "exchange");
    int64_t peak = 0;
    for (int dst = 0; dst < p; ++dst) {
      int64_t total = 0;
      for (int src = 0; src < p; ++src) {
        offsets[static_cast<size_t>(src) * p + dst] = total;
        total += counts[static_cast<size_t>(src) * p + dst];
      }
      base[dst] = out.fragment(dst).ResizeRowsForOverwrite(total);
      peak = std::max(peak, total);
    }
    cluster.metrics().RecordFragmentRows(peak);
  }

  // Phase 2.
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCopy);
    pool.ParallelFor(p, [&](int64_t task) {
      const int src = static_cast<int>(task);
      MPCQP_TRACE_SCOPE_ARG("copy", "exchange", src);
      const Relation& frag = rel.fragment(src);
      if (frag.empty()) return;
      std::vector<int64_t> cursor(
          offsets.begin() + static_cast<size_t>(src) * p,
          offsets.begin() + static_cast<size_t>(src + 1) * p);
      const std::vector<int32_t>& flat = dest_of[src];
      const std::vector<int64_t>& ends = row_end[src];
      const Value* in = frag.row(0);
      const int64_t n = frag.size();
      int64_t j = 0;
      for (int64_t i = 0; i < n; ++i, in += arity) {
        for (; j < ends[i]; ++j) {
          const int dst = flat[j];
          std::memcpy(base[dst] + cursor[dst] * arity, in,
                      static_cast<size_t>(arity) * sizeof(Value));
          ++cursor[dst];
        }
      }
    });
  }
  return out;
}

}  // namespace

DistRelation HashPartition(Cluster& cluster, const DistRelation& rel,
                           const std::vector<int>& key_cols,
                           const HashFunction& hash,
                           const std::string& label) {
  MPCQP_CHECK(!key_cols.empty());
  for (int c : key_cols) {
    MPCQP_CHECK_GE(c, 0);
    MPCQP_CHECK_LT(c, rel.arity());
  }
  const int p = cluster.num_servers();
  const auto bucket = [p](uint64_t h) {
    return static_cast<int>((static_cast<unsigned __int128>(h) * p) >> 64);
  };
  if (key_cols.size() == 1) {
    // Hash the key value in place — no gather.
    const int col = key_cols.front();
    return RouteSingle(
        cluster, rel,
        [&hash, bucket, col](const RouteContext&, const Value* row) {
          return bucket(hash.HashSpan(row + col, 1));
        },
        label);
  }
  return RouteSingle(
      cluster, rel,
      [&](const RouteContext&, const Value* row) {
        // Per-thread scratch: the callback runs concurrently on workers.
        thread_local std::vector<Value> key;
        key.resize(key_cols.size());
        for (size_t k = 0; k < key_cols.size(); ++k) key[k] = row[key_cols[k]];
        return bucket(hash.HashSpan(key.data(), static_cast<int>(key.size())));
      },
      label);
}

DistRelation Broadcast(Cluster& cluster, const DistRelation& rel,
                       const std::string& label) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);
  MPCQP_CHECK_GT(rel.arity(), 0) << "cannot route nullary relations";
  RoundScope scope(cluster, label);

  const int arity = rel.arity();

  // Every destination receives the same src-major concatenation, so build
  // it once and hand out p copy-on-write handles to the one payload.
  Relation all(arity);
  int nonempty = 0;
  int last_nonempty = -1;
  int64_t total = 0;
  for (int src = 0; src < p; ++src) {
    const int64_t n = rel.fragment(src).size();
    if (n > 0) {
      ++nonempty;
      last_nonempty = src;
      total += n;
    }
  }
  if (nonempty == 1) {
    // One source (a gathered sample, say): its fragment IS the broadcast
    // payload. Zero bytes move.
    all = rel.fragment(last_nonempty);
  } else if (nonempty > 1) {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCopy);
    MPCQP_TRACE_SCOPE("broadcast payload", "exchange");
    Value* base = all.ResizeRowsForOverwrite(total);
    std::vector<int64_t> offsets(p);
    int64_t at = 0;
    for (int src = 0; src < p; ++src) {
      offsets[src] = at;
      at += rel.fragment(src).size();
    }
    cluster.pool().ParallelFor(p, [&](int64_t task) {
      const int src = static_cast<int>(task);
      const Relation& frag = rel.fragment(src);
      if (frag.empty()) return;
      std::memcpy(base + offsets[src] * arity, frag.row(0),
                  static_cast<size_t>(frag.size()) * arity * sizeof(Value));
    });
  }
  cluster.metrics().RecordFragmentRows(total);

  // Metering is unchanged: every server still receives every tuple; the
  // shared payload is a simulator-memory optimization, not a cost one.
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCount);
    for (int src = 0; src < p; ++src) {
      const int64_t n = rel.fragment(src).size();
      if (n == 0) continue;
      for (int dst = 0; dst < p; ++dst) {
        cluster.RecordMessage(src, dst, n, n * arity);
      }
    }
  }

  DistRelation out(arity, p);
  for (int dst = 0; dst < p; ++dst) out.fragment(dst) = all;
  return out;
}

DistRelation RangePartition(Cluster& cluster, const DistRelation& rel, int col,
                            const std::vector<Value>& splitters,
                            const std::string& label) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  MPCQP_CHECK_EQ(static_cast<int>(splitters.size()) + 1,
                 cluster.num_servers());
  MPCQP_CHECK(std::is_sorted(splitters.begin(), splitters.end()));
  return RouteSingle(
      cluster, rel,
      [&](const RouteContext&, const Value* row) {
        const auto it =
            std::upper_bound(splitters.begin(), splitters.end(), row[col]);
        return static_cast<int>(it - splitters.begin());
      },
      label);
}

DistRelation Route(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const Value* row, std::vector<int>& dests)>&
        targets,
    const std::string& label) {
  return RouteMulti(
      cluster, rel,
      [&targets](const RouteContext&, const Value* row,
                 std::vector<int>& dests) { targets(row, dests); },
      label);
}

DistRelation RouteWithContext(
    Cluster& cluster, const DistRelation& rel,
    const std::function<void(const RouteContext& ctx, const Value* row,
                             std::vector<int>& dests)>& targets,
    const std::string& label) {
  return RouteMulti(cluster, rel, targets, label);
}

Relation GatherToServer(Cluster& cluster, const DistRelation& rel, int dst,
                        const std::string& label) {
  MPCQP_CHECK_GE(dst, 0);
  MPCQP_CHECK_LT(dst, cluster.num_servers());
  DistRelation gathered = RouteSingle(
      cluster, rel,
      [dst](const RouteContext&, const Value*) { return dst; }, label);
  return std::move(gathered.fragment(dst));
}

}  // namespace mpcqp
