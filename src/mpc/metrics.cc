#include "mpc/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/simd.h"
#include "common/trace.h"
#include "mpc/cluster.h"
#include "relation/relation.h"

namespace mpcqp {

namespace {

constexpr double kNanosPerMilli = 1e6;

double NanosToMs(int64_t nanos) {
  return static_cast<double>(nanos) / kNanosPerMilli;
}

void AtomicMax(std::atomic<int64_t>& slot, int64_t value) {
  int64_t seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kRoute:
      return "route";
    case Phase::kCount:
      return "count";
    case Phase::kCopy:
      return "copy";
    case Phase::kLocalCompute:
      return "local_compute";
    case Phase::kTranspose:
      return "transpose";
    case Phase::kColumnarScan:
      return "columnar_scan";
  }
  return "unknown";
}

MpcMetrics::MpcMetrics() {
  for (int i = 0; i < kNumPhases; ++i) {
    current_phase_ns_[i].store(0, std::memory_order_relaxed);
    outside_phase_ns_[i].store(0, std::memory_order_relaxed);
  }
  baseline_detaches_ = TraceCounters::cow_detaches.load();
}

int64_t MpcMetrics::DetachesNow() const {
  return attributed_ ? local_detaches_.load(std::memory_order_relaxed)
                     : TraceCounters::cow_detaches.load();
}

void MpcMetrics::EnableCowAttribution() {
  if (attributed_) return;
  attributed_ = true;
  // Totals restart on the attributed counter: detaches recorded before the
  // first ScopedExecution were unattributable process-wide noise.
  baseline_detaches_ = local_detaches_.load(std::memory_order_relaxed);
}

void MpcMetrics::BeginRound(const std::string& label) {
  MPCQP_CHECK(!in_round_);
  in_round_ = true;
  current_ = RoundRecord();
  current_.label = label;
  round_start_ns_ = Tracer::NowNanos();
  round_start_detaches_ = DetachesNow();
  current_peak_rows_.store(0, std::memory_order_relaxed);
  for (auto& slot : current_phase_ns_) {
    slot.store(0, std::memory_order_relaxed);
  }
}

void MpcMetrics::EndRound() {
  MPCQP_CHECK(in_round_);
  in_round_ = false;
  const int64_t end_ns = Tracer::NowNanos();
  current_.wall_ms = NanosToMs(end_ns - round_start_ns_);
  for (int i = 0; i < kNumPhases; ++i) {
    current_.phase_ms[i] =
        NanosToMs(current_phase_ns_[i].load(std::memory_order_relaxed));
  }
  current_.cow_detaches = DetachesNow() - round_start_detaches_;
  current_.peak_fragment_rows =
      current_peak_rows_.load(std::memory_order_relaxed);
  // Mirror the round as a span on the Chrome-trace timeline.
  Tracer::Get().RecordComplete(current_.label, "round", round_start_ns_,
                               end_ns - round_start_ns_);
  rounds_.push_back(std::move(current_));
  current_ = RoundRecord();
}

void MpcMetrics::AddPhaseNanos(Phase phase, int64_t nanos) {
  auto& slots = in_round_ ? current_phase_ns_ : outside_phase_ns_;
  slots[static_cast<int>(phase)].fetch_add(nanos, std::memory_order_relaxed);
}

void MpcMetrics::RecordFragmentRows(int64_t rows) {
  AtomicMax(peak_fragment_rows_, rows);
  if (in_round_) AtomicMax(current_peak_rows_, rows);
}

void MpcMetrics::RecordPlanning(double planning_ms, bool cache_hit) {
  planning_ms_ += planning_ms;
  if (cache_hit) {
    ++plan_cache_hits_;
  } else {
    ++plan_cache_misses_;
  }
}

double MpcMetrics::outside_phase_ms(Phase phase) const {
  return NanosToMs(
      outside_phase_ns_[static_cast<int>(phase)].load(
          std::memory_order_relaxed));
}

int64_t MpcMetrics::total_cow_detaches() const {
  return DetachesNow() - baseline_detaches_;
}

void MpcMetrics::Reset() {
  MPCQP_CHECK(!in_round_);
  rounds_.clear();
  for (int i = 0; i < kNumPhases; ++i) {
    outside_phase_ns_[i].store(0, std::memory_order_relaxed);
  }
  peak_fragment_rows_.store(0, std::memory_order_relaxed);
  baseline_detaches_ = DetachesNow();
  planning_ms_ = 0;
  plan_cache_hits_ = 0;
  plan_cache_misses_ = 0;
}

ScopedPhaseTimer::ScopedPhaseTimer(MpcMetrics& metrics, Phase phase)
    : metrics_(metrics), phase_(phase), start_ns_(Tracer::NowNanos()) {}

ScopedPhaseTimer::~ScopedPhaseTimer() {
  metrics_.AddPhaseNanos(phase_, Tracer::NowNanos() - start_ns_);
}

StatsReport BuildStatsReport(const Cluster& cluster) {
  const CostReport& costs = cluster.cost_report();
  const MpcMetrics& metrics = cluster.metrics();
  StatsReport report;
  // The metrics rounds mirror the cost rounds 1:1 (both are appended by
  // Cluster::EndRound); tolerate a mismatch defensively by zipping the
  // common prefix.
  const size_t n = std::min(costs.rounds().size(), metrics.rounds().size());
  for (size_t i = 0; i < n; ++i) {
    const RoundCost& cost = costs.rounds()[i];
    const MpcMetrics::RoundRecord& timing = metrics.rounds()[i];
    StatsReport::Round round;
    round.label = cost.label;
    round.max_tuples_received = cost.MaxTuplesReceived();
    round.total_tuples_received = cost.TotalTuplesReceived();
    round.max_values_received = cost.MaxValuesReceived();
    round.total_values_received = cost.TotalValuesReceived();
    round.bytes_received =
        cost.TotalValuesReceived() * static_cast<int64_t>(sizeof(Value));
    round.wall_ms = timing.wall_ms;
    for (int ph = 0; ph < kNumPhases; ++ph) {
      round.phase_ms[ph] = timing.phase_ms[ph];
    }
    round.cow_detaches = timing.cow_detaches;
    round.peak_fragment_rows = timing.peak_fragment_rows;
    report.total_wall_ms += timing.wall_ms;
    report.total_bytes += round.bytes_received;
    report.rounds.push_back(std::move(round));
  }
  report.num_rounds = costs.num_rounds();
  report.max_load_tuples = costs.MaxLoadTuples();
  report.max_load_values = costs.MaxLoadValues();
  report.total_comm_tuples = costs.TotalCommTuples();
  for (int ph = 0; ph < kNumPhases; ++ph) {
    report.outside_phase_ms[ph] =
        metrics.outside_phase_ms(static_cast<Phase>(ph));
    report.total_wall_ms += report.outside_phase_ms[ph];
  }
  report.cow_detaches = metrics.total_cow_detaches();
  report.peak_fragment_rows = metrics.peak_fragment_rows();
  report.planning_ms = metrics.planning_ms();
  report.plan_cache_hits = metrics.plan_cache_hits();
  report.plan_cache_misses = metrics.plan_cache_misses();
  report.simd_isa = simd::IsaLevelName(simd::DispatchedIsa());
  return report;
}

namespace {

void AppendKv(std::string& out, const char* key, int64_t value,
              const char* indent) {
  out += std::string(indent) + "\"" + key +
         "\": " + std::to_string(value) + ",\n";
}

void AppendKv(std::string& out, const char* key, double value,
              const char* indent, bool trailing_comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += std::string(indent) + "\"" + key + "\": " + buf +
         (trailing_comma ? ",\n" : "\n");
}

}  // namespace

std::string StatsReport::ToJson() const {
  std::string out = "{\n";
  AppendKv(out, "num_rounds", static_cast<int64_t>(num_rounds), "  ");
  AppendKv(out, "max_load_tuples", max_load_tuples, "  ");
  AppendKv(out, "max_load_values", max_load_values, "  ");
  AppendKv(out, "total_comm_tuples", total_comm_tuples, "  ");
  AppendKv(out, "total_bytes", total_bytes, "  ");
  AppendKv(out, "total_wall_ms", total_wall_ms, "  ");
  AppendKv(out, "planning_ms", planning_ms, "  ");
  AppendKv(out, "plan_cache_hits", plan_cache_hits, "  ");
  AppendKv(out, "plan_cache_misses", plan_cache_misses, "  ");
  for (int ph = 0; ph < kNumPhases; ++ph) {
    const std::string key =
        std::string("outside_") + PhaseName(static_cast<Phase>(ph)) + "_ms";
    AppendKv(out, key.c_str(), outside_phase_ms[ph], "  ");
  }
  AppendKv(out, "cow_detaches", cow_detaches, "  ");
  AppendKv(out, "peak_fragment_rows", peak_fragment_rows, "  ");
  out += "  \"simd_isa\": \"" + JsonEscape(simd_isa) + "\",\n";
  out += "  \"rounds\": [";
  for (size_t i = 0; i < rounds.size(); ++i) {
    const Round& round = rounds[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"label\": \"" + JsonEscape(round.label) + "\",\n";
    AppendKv(out, "max_tuples_received", round.max_tuples_received, "      ");
    AppendKv(out, "total_tuples_received", round.total_tuples_received,
             "      ");
    AppendKv(out, "max_values_received", round.max_values_received, "      ");
    AppendKv(out, "total_values_received", round.total_values_received,
             "      ");
    AppendKv(out, "bytes_received", round.bytes_received, "      ");
    AppendKv(out, "wall_ms", round.wall_ms, "      ");
    for (int ph = 0; ph < kNumPhases; ++ph) {
      const std::string key =
          std::string(PhaseName(static_cast<Phase>(ph))) + "_ms";
      AppendKv(out, key.c_str(), round.phase_ms[ph], "      ");
    }
    AppendKv(out, "cow_detaches", round.cow_detaches, "      ");
    AppendKv(out, "peak_fragment_rows", round.peak_fragment_rows, "      ");
    // Strip the trailing ",\n" of the last key-value pair.
    out.erase(out.size() - 2);
    out += "\n    }";
  }
  out += rounds.empty() ? "],\n" : "\n  ],\n";
  AppendKv(out, "schema_version", static_cast<int64_t>(1), "  ");
  out.erase(out.size() - 2);
  out += "\n}\n";
  return out;
}

Status WriteStatsJson(const StatsReport& report, const std::string& path) {
  const std::string json = report.ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return InternalError("cannot write stats to " + path);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return InternalError("short write to " + path);
  }
  return OkStatus();
}

}  // namespace mpcqp
