#ifndef MPCQP_MPC_BSP_TIME_H_
#define MPCQP_MPC_BSP_TIME_H_

#include <string>

#include "mpc/cost.h"

namespace mpcqp {

// BSP-style wall-clock estimation (deck slide 19: MPC is simplified BSP).
//
// The MPC model keeps only (L, r); BSP charges each superstep its
// communication time plus a synchronization latency:
//
//   T = Σ_rounds ( max-load_r · g + ℓ )
//
// with g = seconds per tuple of per-server bandwidth and ℓ = per-round
// barrier latency. This converts a CostReport into the quantity real
// systems race on, and makes the 1-round-vs-multi-round tradeoffs
// numerically comparable (a large ℓ is exactly the planner's
// round_cost_tuples = ℓ/g).
struct BspParameters {
  double seconds_per_tuple = 1e-7;  // ~10M tuples/s per server.
  double round_latency_seconds = 0.1;
};

// Estimated wall-clock seconds for the metered execution.
double EstimateBspSeconds(const CostReport& report,
                          const BspParameters& params = {});

// Per-round breakdown, e.g. for printing next to a cost report.
std::string BspBreakdown(const CostReport& report,
                         const BspParameters& params = {});

}  // namespace mpcqp

#endif  // MPCQP_MPC_BSP_TIME_H_
