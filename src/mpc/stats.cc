#include "mpc/stats.h"

#include <algorithm>

#include "common/check.h"
#include "common/flat_counter.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

// Local pre-aggregation: fragment -> (value, count) partials.
DistRelation LocalCounts(const DistRelation& rel, int col) {
  DistRelation partials(2, rel.num_servers());
  for (int s = 0; s < rel.num_servers(); ++s) {
    FlatCounter counts;
    const Relation& frag = rel.fragment(s);
    for (int64_t i = 0; i < frag.size(); ++i) counts.Add(frag.at(i, col));
    for (const auto& [value, count] : counts.SortedEntries()) {
      partials.fragment(s).AppendRow({value, static_cast<Value>(count)});
    }
  }
  return partials;
}

}  // namespace

std::vector<DistributedHeavyHitter> DetectHeavyHittersDistributed(
    Cluster& cluster, const DistRelation& rel, int col, int64_t threshold) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(rel.num_servers(), p);

  // Round 1: partials to the value's owner.
  const HashFunction hash = cluster.NewHashFunction();
  const DistRelation routed = HashPartition(
      cluster, LocalCounts(rel, col), {0}, hash, "stats: count shuffle");

  // Local finalize: totals per owned value; keep the heavy survivors.
  DistRelation survivors(2, p);
  for (int s = 0; s < p; ++s) {
    // Counts are bounded by the row count, so the sum cannot overflow.
    const Relation totals = GroupBySum(routed.fragment(s), {0}, 1).value();
    for (int64_t i = 0; i < totals.size(); ++i) {
      if (static_cast<int64_t>(totals.at(i, 1)) > threshold) {
        survivors.fragment(s).AppendRowFrom(totals, i);
      }
    }
  }

  // Round 2: broadcast the (few) heavy values so every server knows them.
  const DistRelation everywhere =
      Broadcast(cluster, survivors, "stats: hitter broadcast");

  Relation collected = everywhere.fragment(0);
  collected.SortRowsBy({0});
  std::vector<DistributedHeavyHitter> result;
  result.reserve(collected.size());
  for (int64_t i = 0; i < collected.size(); ++i) {
    result.push_back({collected.at(i, 0),
                      static_cast<int64_t>(collected.at(i, 1))});
  }
  return result;
}

Relation DistributedDegreeTable(Cluster& cluster, const DistRelation& rel,
                                int col, int gather_to) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  const HashFunction hash = cluster.NewHashFunction();
  const DistRelation routed = HashPartition(
      cluster, LocalCounts(rel, col), {0}, hash, "stats: count shuffle");
  DistRelation totals(2, cluster.num_servers());
  for (int s = 0; s < cluster.num_servers(); ++s) {
    totals.fragment(s) = GroupBySum(routed.fragment(s), {0}, 1).value();
  }
  Relation gathered =
      GatherToServer(cluster, totals, gather_to, "stats: gather degrees");
  gathered.SortRowsBy({0});
  return gathered;
}

}  // namespace mpcqp
