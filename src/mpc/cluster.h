#ifndef MPCQP_MPC_CLUSTER_H_
#define MPCQP_MPC_CLUSTER_H_

#include <cstdint>
#include <string>

#include "common/hash.h"
#include "mpc/cost.h"

namespace mpcqp {

// A simulated shared-nothing MPC cluster of p servers.
//
// The cluster does not own data (DistRelation does); it owns the round
// structure and the communication meter. Exchange primitives (exchange.h)
// record every tuple they move via RecordMessage while a round is open.
//
// Round semantics: by default each exchange primitive opens and closes its
// own round. An algorithm that performs several exchanges in one logical
// MPC round (e.g. repartitioning both join inputs) brackets them with
// BeginRound/EndRound; the costs then accumulate into a single RoundCost.
class Cluster {
 public:
  // `seed` derives all hash functions handed out by NewHashFunction, so a
  // run is reproducible given (p, seed).
  Cluster(int num_servers, uint64_t seed);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_servers() const { return num_servers_; }

  // A fresh hash function, independent (by seed) from previous ones.
  HashFunction NewHashFunction();

  // Opens a round. It is an error to open a round while one is open.
  void BeginRound(std::string label);
  // Closes the current round and appends its cost to the report.
  void EndRound();
  bool in_round() const { return in_round_; }

  // Meters `tuples` tuples (`values` values total) moving src -> dst in the
  // current round. Self-messages (src == dst) are counted too: MPC load
  // bounds measure data a server must hold for the round, regardless of
  // origin. Requires an open round.
  void RecordMessage(int src, int dst, int64_t tuples, int64_t values);

  const CostReport& cost_report() const { return report_; }
  // Forgets all recorded rounds (e.g. between benchmark repetitions).
  void ResetCosts();

 private:
  int num_servers_;
  uint64_t next_seed_;
  bool in_round_ = false;
  RoundCost current_round_{0};
  CostReport report_;
};

// Opens a round on construction (unless one is already open) and closes it
// on destruction if it opened one. Lets exchange primitives run standalone
// or merged into a caller's round with no duplicated logic.
class RoundScope {
 public:
  RoundScope(Cluster& cluster, std::string label);
  ~RoundScope();

  RoundScope(const RoundScope&) = delete;
  RoundScope& operator=(const RoundScope&) = delete;

 private:
  Cluster& cluster_;
  bool owns_round_;
};

}  // namespace mpcqp

#endif  // MPCQP_MPC_CLUSTER_H_
