#ifndef MPCQP_MPC_CLUSTER_H_
#define MPCQP_MPC_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "mpc/cost.h"
#include "mpc/metrics.h"
#include "relation/columnar.h"

namespace mpcqp {

// Execution knobs for a simulated cluster.
struct ClusterOptions {
  // Degree of real parallelism used to execute a round: exchange routing
  // and per-server local compute fan out over this many OS threads via
  // Cluster::pool(). The value never changes results — outputs and the
  // CostReport are bit-identical for every thread count (see DESIGN.md,
  // "Execution model"); 1 reproduces the historic single-threaded run.
  int num_threads = 1;
  // Rows per exchange morsel: the two-phase routers tile their route and
  // copy passes over (source, row-range) morsels of at most this many
  // rows, decoupling the parallelism grain from the server count p. Must
  // be >= 1. Like num_threads, the value never changes results — the
  // morsel decomposition derives from input sizes only, and counts
  // aggregate in fixed morsel order (see DESIGN.md, "Execution model").
  int64_t morsel_rows = 8192;
  // Physical layout for the hot kernels (exchange route hashing, local
  // selection/semijoin/group-by scans). Like num_threads and morsel_rows
  // this NEVER changes results — outputs, CostReports, and strategy
  // choices are bit-identical for every mode; kAuto (the default) picks
  // per kernel from arity heuristics (relation/columnar.h). The CLI
  // exposes it as --layout row|columnar|auto.
  LayoutMode layout = LayoutMode::kAuto;
  // When set, the cluster ATTACHES to this pool instead of spawning its
  // own threads, and num_threads is ignored. Any number of logical
  // clusters may attach to one pool — this is how N in-flight queries
  // interleave their morsels on one process-wide work-stealing pool (the
  // serving runtime; see DESIGN.md, "Serving runtime"). Everything that
  // carries query state — cost shards, the hash-seed sequence, metrics —
  // stays strictly per-Cluster, so concurrent queries produce outputs and
  // CostReports bit-identical to their solo runs.
  std::shared_ptr<ThreadPool> shared_pool;
};

// A simulated shared-nothing MPC cluster of p servers.
//
// The cluster does not own data (DistRelation does); it owns the round
// structure, the communication meter, and a handle to the thread pool
// that algorithms use to execute one round's per-server work on real
// cores — a private pool by default, or a process-wide shared pool when
// ClusterOptions::shared_pool is set (many clusters, one pool: the
// multi-query serving configuration).
//
// Round semantics: by default each exchange primitive opens and closes its
// own round. An algorithm that performs several exchanges in one logical
// MPC round (e.g. repartitioning both join inputs) brackets them with
// BeginRound/EndRound; the costs then accumulate into a single RoundCost.
class Cluster {
 public:
  // `seed` derives all hash functions handed out by NewHashFunction, so a
  // run is reproducible given (p, seed) — and, by the determinism
  // contract, independent of options.num_threads.
  Cluster(int num_servers, uint64_t seed, ClusterOptions options = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_servers() const { return num_servers_; }
  int num_threads() const { return pool_->num_threads(); }
  int64_t morsel_rows() const { return morsel_rows_; }
  LayoutMode layout() const { return layout_; }

  // The pool algorithms use for parallel per-server work within a round.
  // With num_threads == 1 every ParallelFor runs inline on the caller.
  ThreadPool& pool() { return *pool_; }

  // A fresh hash function, independent (by seed) from previous ones.
  //
  // Contract: not thread-safe, and deliberately so — the seed sequence is
  // part of the determinism contract, and a draw whose position depended
  // on thread scheduling would change results across runs. Calling this
  // from inside a parallel loop body CHECK-fails (at every thread count,
  // including 1, so the misuse cannot hide in serial test runs). The
  // check is thread-scoped, not pool-scoped: on a shared pool, another
  // cluster's in-flight loops never trip it.
  // Draw hash functions before fanning out and copy them into tasks;
  // HashFunction is a trivially copyable value type.
  HashFunction NewHashFunction();

  // Opens a round. It is an error to open a round while one is open.
  void BeginRound(std::string label);
  // Closes the current round and appends its cost to the report. Shard
  // counters are merged here in fixed shard order; integer sums make the
  // result independent of which thread metered which message.
  void EndRound();
  bool in_round() const { return in_round_; }

  // Meters `tuples` tuples (`values` values total) moving src -> dst in the
  // current round. Self-messages (src == dst) are counted too: MPC load
  // bounds measure data a server must hold for the round, regardless of
  // origin. Requires an open round. Thread-safe: concurrent calls from
  // pool workers accumulate into per-thread shards.
  void RecordMessage(int src, int dst, int64_t tuples, int64_t values);

  const CostReport& cost_report() const { return report_; }
  // Forgets all recorded rounds (e.g. between benchmark repetitions); also
  // resets the timing metrics below.
  void ResetCosts();

  // Always-on runtime metrics (wall time per round, per-phase breakdown,
  // peak fragment sizes, COW detaches), aligned 1:1 with cost_report()'s
  // rounds. See mpc/metrics.h; BuildStatsReport(cluster) zips the two.
  MpcMetrics& metrics() { return metrics_; }
  const MpcMetrics& metrics() const { return metrics_; }

  // Marks the calling thread (and, via ThreadPool's ExecContext
  // propagation, every task its parallel loops fan out) as executing on
  // behalf of this cluster, for the scope's lifetime. Required for exact
  // per-query COW-detach metrics when several clusters share one pool;
  // harmless (and a no-op for results) when the cluster owns its pool.
  // The first scope switches the cluster's metrics to attributed detach
  // accounting (see MpcMetrics::EnableCowAttribution).
  class ScopedExecution {
   public:
    explicit ScopedExecution(Cluster& cluster)
        : scope_(&cluster.exec_context_) {
      cluster.metrics_.EnableCowAttribution();
    }

    ScopedExecution(const ScopedExecution&) = delete;
    ScopedExecution& operator=(const ScopedExecution&) = delete;

   private:
    ExecContextScope scope_;
  };

 private:
  struct CostShard;

  int num_servers_;
  int64_t morsel_rows_;
  LayoutMode layout_;
  uint64_t next_seed_;
  bool in_round_ = false;
  RoundCost current_round_{0};
  CostReport report_;
  MpcMetrics metrics_;
  ExecContext exec_context_;
  // Owned or shared with other clusters (ClusterOptions::shared_pool).
  std::shared_ptr<ThreadPool> pool_;
  // One shard per pool slot (worker threads + the caller); RecordMessage
  // picks the calling thread's shard, EndRound folds them into the round.
  std::vector<std::unique_ptr<CostShard>> shards_;
};

// Opens a round on construction (unless one is already open) and closes it
// on destruction if it opened one. Lets exchange primitives run standalone
// or merged into a caller's round with no duplicated logic.
class RoundScope {
 public:
  RoundScope(Cluster& cluster, std::string label);
  ~RoundScope();

  RoundScope(const RoundScope&) = delete;
  RoundScope& operator=(const RoundScope&) = delete;

 private:
  Cluster& cluster_;
  bool owns_round_;
};

}  // namespace mpcqp

#endif  // MPCQP_MPC_CLUSTER_H_
