#include "mpc/cost.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace mpcqp {

RoundCost::RoundCost(int num_servers, std::string label_text)
    : label(std::move(label_text)),
      tuples_received(num_servers, 0),
      values_received(num_servers, 0),
      tuples_sent(num_servers, 0),
      values_sent(num_servers, 0) {}

namespace {
int64_t MaxOf(const std::vector<int64_t>& v) {
  return v.empty() ? 0 : *std::max_element(v.begin(), v.end());
}
int64_t SumOf(const std::vector<int64_t>& v) {
  return std::accumulate(v.begin(), v.end(), int64_t{0});
}
}  // namespace

int64_t RoundCost::MaxTuplesReceived() const { return MaxOf(tuples_received); }
int64_t RoundCost::MaxValuesReceived() const { return MaxOf(values_received); }
int64_t RoundCost::TotalTuplesReceived() const {
  return SumOf(tuples_received);
}
int64_t RoundCost::TotalValuesReceived() const {
  return SumOf(values_received);
}

int64_t CostReport::MaxLoadTuples() const {
  int64_t best = 0;
  for (const RoundCost& r : rounds_) {
    best = std::max(best, r.MaxTuplesReceived());
  }
  return best;
}

int64_t CostReport::MaxLoadValues() const {
  int64_t best = 0;
  for (const RoundCost& r : rounds_) {
    best = std::max(best, r.MaxValuesReceived());
  }
  return best;
}

int64_t CostReport::TotalCommTuples() const {
  int64_t total = 0;
  for (const RoundCost& r : rounds_) total += r.TotalTuplesReceived();
  return total;
}

int64_t CostReport::TotalCommValues() const {
  int64_t total = 0;
  for (const RoundCost& r : rounds_) total += r.TotalValuesReceived();
  return total;
}

std::string CostReport::ToString() const {
  std::ostringstream os;
  os << "rounds=" << num_rounds() << " L(tuples)=" << MaxLoadTuples()
     << " C(tuples)=" << TotalCommTuples();
  for (int i = 0; i < num_rounds(); ++i) {
    const RoundCost& r = rounds_[i];
    os << "\n  round " << (i + 1) << " [" << r.label
       << "]: max_recv=" << r.MaxTuplesReceived()
       << " total_recv=" << r.TotalTuplesReceived();
  }
  return os.str();
}

}  // namespace mpcqp
