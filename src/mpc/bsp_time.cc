#include "mpc/bsp_time.h"

#include <sstream>

namespace mpcqp {

double EstimateBspSeconds(const CostReport& report,
                          const BspParameters& params) {
  double total = 0.0;
  for (const RoundCost& round : report.rounds()) {
    total += static_cast<double>(round.MaxTuplesReceived()) *
                 params.seconds_per_tuple +
             params.round_latency_seconds;
  }
  return total;
}

std::string BspBreakdown(const CostReport& report,
                         const BspParameters& params) {
  std::ostringstream os;
  os << "estimated BSP time: " << EstimateBspSeconds(report, params)
     << "s (g=" << params.seconds_per_tuple
     << " s/tuple, latency=" << params.round_latency_seconds << "s)";
  for (int i = 0; i < report.num_rounds(); ++i) {
    const RoundCost& round = report.rounds()[i];
    os << "\n  round " << (i + 1) << ": "
       << static_cast<double>(round.MaxTuplesReceived()) *
                  params.seconds_per_tuple +
              params.round_latency_seconds
       << "s [" << round.label << "]";
  }
  return os.str();
}

}  // namespace mpcqp
