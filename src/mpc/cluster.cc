#include "mpc/cluster.h"

#include <utility>

#include "common/check.h"

namespace mpcqp {

Cluster::Cluster(int num_servers, uint64_t seed)
    : num_servers_(num_servers), next_seed_(seed) {
  MPCQP_CHECK_GT(num_servers, 0);
}

HashFunction Cluster::NewHashFunction() {
  // Stride the seed space; HashFunction whitens the seed again.
  next_seed_ += 0x9e3779b97f4a7c15ULL;
  return HashFunction(next_seed_);
}

void Cluster::BeginRound(std::string label) {
  MPCQP_CHECK(!in_round_) << "BeginRound while a round is open";
  in_round_ = true;
  current_round_ = RoundCost(num_servers_, std::move(label));
}

void Cluster::EndRound() {
  MPCQP_CHECK(in_round_) << "EndRound without an open round";
  in_round_ = false;
  report_.AddRound(std::move(current_round_));
  current_round_ = RoundCost(0);
}

void Cluster::RecordMessage(int src, int dst, int64_t tuples, int64_t values) {
  MPCQP_CHECK(in_round_) << "RecordMessage outside a round";
  MPCQP_CHECK_GE(src, 0);
  MPCQP_CHECK_LT(src, num_servers_);
  MPCQP_CHECK_GE(dst, 0);
  MPCQP_CHECK_LT(dst, num_servers_);
  current_round_.tuples_sent[src] += tuples;
  current_round_.values_sent[src] += values;
  current_round_.tuples_received[dst] += tuples;
  current_round_.values_received[dst] += values;
}

void Cluster::ResetCosts() {
  MPCQP_CHECK(!in_round_) << "ResetCosts during a round";
  report_.Clear();
}

RoundScope::RoundScope(Cluster& cluster, std::string label)
    : cluster_(cluster), owns_round_(!cluster.in_round()) {
  if (owns_round_) cluster_.BeginRound(std::move(label));
}

RoundScope::~RoundScope() {
  if (owns_round_) cluster_.EndRound();
}

}  // namespace mpcqp
