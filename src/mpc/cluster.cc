#include "mpc/cluster.h"

#include <mutex>
#include <utility>

#include "common/check.h"

namespace mpcqp {

// Per-thread accumulator for one round's message counts. Each vector is
// indexed by server id; the mutex makes the shard safe even if a foreign
// thread ever lands on it (the expected callers — one pool worker per
// shard — never contend).
struct Cluster::CostShard {
  std::mutex mu;
  std::vector<int64_t> tuples_sent;
  std::vector<int64_t> values_sent;
  std::vector<int64_t> tuples_received;
  std::vector<int64_t> values_received;

  explicit CostShard(int num_servers)
      : tuples_sent(num_servers, 0),
        values_sent(num_servers, 0),
        tuples_received(num_servers, 0),
        values_received(num_servers, 0) {}
};

Cluster::Cluster(int num_servers, uint64_t seed, ClusterOptions options)
    : num_servers_(num_servers),
      morsel_rows_(options.morsel_rows),
      layout_(options.layout),
      next_seed_(seed) {
  MPCQP_CHECK_GT(num_servers, 0);
  MPCQP_CHECK_GE(options.morsel_rows, 1)
      << "ClusterOptions::morsel_rows must be >= 1";
  pool_ = options.shared_pool
              ? options.shared_pool
              : std::make_shared<ThreadPool>(options.num_threads);
  exec_context_.cow_detaches = &metrics_.attributed_cow_detaches();
  exec_context_.cow_detach_bytes = &metrics_.attributed_cow_detach_bytes();
  // Shard 0 belongs to non-worker callers (query driver threads); shard
  // w + 1 to pool worker w. The shards are per-cluster even when the pool
  // is shared: a worker metering cluster A's morsel writes into A's shard
  // for its pool-scoped index, so concurrent queries never mix counts.
  shards_.reserve(static_cast<size_t>(pool_->num_threads()));
  for (int i = 0; i < pool_->num_threads(); ++i) {
    shards_.push_back(std::make_unique<CostShard>(num_servers_));
  }
}

Cluster::~Cluster() = default;

HashFunction Cluster::NewHashFunction() {
  // The seed counter is deliberately plain state: handing out hash
  // functions from inside a parallel region would both race and make the
  // sequence depend on scheduling, breaking run-to-run determinism. Fail
  // fast instead of corrupting silently.
  MPCQP_CHECK(!pool_->in_parallel_region())
      << "NewHashFunction called inside a parallel region; draw hash "
         "functions before fanning out (they are cheap to copy into tasks)";
  // Stride the seed space; HashFunction whitens the seed again.
  next_seed_ += 0x9e3779b97f4a7c15ULL;
  return HashFunction(next_seed_);
}

void Cluster::BeginRound(std::string label) {
  MPCQP_CHECK(!in_round_) << "BeginRound while a round is open";
  in_round_ = true;
  metrics_.BeginRound(label);
  current_round_ = RoundCost(num_servers_, std::move(label));
}

void Cluster::EndRound() {
  MPCQP_CHECK(in_round_) << "EndRound without an open round";
  in_round_ = false;
  // Fold the shards into the round in fixed (shard-index) order and reset
  // them for the next round. The entries are exact integer sums, so the
  // merged RoundCost is identical no matter how work was spread over
  // threads — this is the determinism contract of the cost meter.
  for (const std::unique_ptr<CostShard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (int s = 0; s < num_servers_; ++s) {
      current_round_.tuples_sent[s] += shard->tuples_sent[s];
      current_round_.values_sent[s] += shard->values_sent[s];
      current_round_.tuples_received[s] += shard->tuples_received[s];
      current_round_.values_received[s] += shard->values_received[s];
      shard->tuples_sent[s] = 0;
      shard->values_sent[s] = 0;
      shard->tuples_received[s] = 0;
      shard->values_received[s] = 0;
    }
  }
  report_.AddRound(std::move(current_round_));
  current_round_ = RoundCost(0);
  metrics_.EndRound();
}

void Cluster::RecordMessage(int src, int dst, int64_t tuples, int64_t values) {
  MPCQP_CHECK(in_round_) << "RecordMessage outside a round";
  MPCQP_CHECK_GE(src, 0);
  MPCQP_CHECK_LT(src, num_servers_);
  MPCQP_CHECK_GE(dst, 0);
  MPCQP_CHECK_LT(dst, num_servers_);
  int index = ThreadPool::current_worker_index() + 1;
  if (index < 0 || index >= static_cast<int>(shards_.size())) index = 0;
  CostShard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.tuples_sent[src] += tuples;
  shard.values_sent[src] += values;
  shard.tuples_received[dst] += tuples;
  shard.values_received[dst] += values;
}

void Cluster::ResetCosts() {
  MPCQP_CHECK(!in_round_) << "ResetCosts during a round";
  report_.Clear();
  metrics_.Reset();
}

RoundScope::RoundScope(Cluster& cluster, std::string label)
    : cluster_(cluster), owns_round_(!cluster.in_round()) {
  if (owns_round_) cluster_.BeginRound(std::move(label));
}

RoundScope::~RoundScope() {
  if (owns_round_) cluster_.EndRound();
}

}  // namespace mpcqp
