#ifndef MPCQP_MPC_STATS_H_
#define MPCQP_MPC_STATS_H_

#include <cstdint>
#include <vector>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// Distributed statistics collection, metered.
//
// The skew-aware algorithms need the degrees of the heavy join values.
// heavy_hitters.h computes them for free (the theory assumes known
// statistics); this header provides the honest two-round protocol a real
// deployment runs, so its cost can be measured and charged:
//
//   round 1: every server pre-aggregates its fragment into (value, count)
//            partials and hash-partitions them by value;
//   round 2: each server finalizes the counts it owns, keeps the values
//            above the threshold, and broadcasts them (at most ~IN/threshold
//            survivors exist, so the broadcast is tiny).
//
// Returned: the heavy (value, count) pairs, identical to the exact oracle.
struct DistributedHeavyHitter {
  Value value = 0;
  int64_t count = 0;
};

std::vector<DistributedHeavyHitter> DetectHeavyHittersDistributed(
    Cluster& cluster, const DistRelation& rel, int col, int64_t threshold);

// The exact per-value degree table of a column, computed distributed
// (round 1 of the protocol above) and gathered to one server (metered).
// Output relation: (value, count), sorted by value.
Relation DistributedDegreeTable(Cluster& cluster, const DistRelation& rel,
                                int col, int gather_to = 0);

}  // namespace mpcqp

#endif  // MPCQP_MPC_STATS_H_
