#include "mpc/dist_relation.h"

#include <algorithm>

#include "common/check.h"

namespace mpcqp {

DistRelation::DistRelation(int arity, int num_servers) : arity_(arity) {
  MPCQP_CHECK_GT(num_servers, 0);
  fragments_.assign(num_servers, Relation(arity));
}

DistRelation::DistRelation(std::vector<Relation> fragments)
    : arity_(fragments.front().arity()), fragments_(std::move(fragments)) {}

DistRelation DistRelation::FromFragments(std::vector<Relation> fragments) {
  MPCQP_CHECK(!fragments.empty());
  for (const Relation& f : fragments) {
    MPCQP_CHECK_EQ(f.arity(), fragments.front().arity());
  }
  return DistRelation(std::move(fragments));
}

DistRelation DistRelation::Scatter(const Relation& input, int num_servers) {
  MPCQP_CHECK_GT(num_servers, 0);
  DistRelation out(input.arity(), num_servers);
  if (num_servers == 1) {
    out.fragments_[0] = input;  // COW handle: no bytes move.
    return out;
  }
  const int64_t n = input.size();
  for (int s = 0; s < num_servers; ++s) {
    // Server s gets rows [s*n/p, (s+1)*n/p), copied in one block.
    const int64_t begin = s * n / num_servers;
    const int64_t end = (s + 1) * n / num_servers;
    out.fragments_[s].AppendRange(input, begin, end);
  }
  return out;
}

int64_t DistRelation::TotalSize() const {
  int64_t total = 0;
  for (const Relation& f : fragments_) total += f.size();
  return total;
}

int64_t DistRelation::MaxFragmentSize() const {
  int64_t best = 0;
  for (const Relation& f : fragments_) best = std::max(best, f.size());
  return best;
}

Relation& DistRelation::fragment(int server) {
  MPCQP_CHECK_GE(server, 0);
  MPCQP_CHECK_LT(server, num_servers());
  return fragments_[server];
}

const Relation& DistRelation::fragment(int server) const {
  MPCQP_CHECK_GE(server, 0);
  MPCQP_CHECK_LT(server, num_servers());
  return fragments_[server];
}

Relation DistRelation::Collect() const {
  if (fragments_.size() == 1) return fragments_[0];  // COW handle.
  Relation out(arity_);
  out.Reserve(TotalSize());
  for (const Relation& f : fragments_) out.Append(f);
  return out;
}

}  // namespace mpcqp
