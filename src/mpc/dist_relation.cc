#include "mpc/dist_relation.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/thread_pool.h"

namespace mpcqp {

namespace {

// Rows per tile for the pool-backed bulk paths (Scatter/Collect). These
// helpers run outside any Cluster, so the grain is a local constant; like
// the exchange morsels it derives from input sizes only.
constexpr int64_t kBulkMorselRows = 8192;

}  // namespace

DistRelation::DistRelation(int arity, int num_servers) : arity_(arity) {
  MPCQP_CHECK_GT(num_servers, 0);
  fragments_.assign(num_servers, Relation(arity));
}

DistRelation::DistRelation(std::vector<Relation> fragments)
    : arity_(fragments.front().arity()), fragments_(std::move(fragments)) {}

DistRelation DistRelation::FromFragments(std::vector<Relation> fragments) {
  MPCQP_CHECK(!fragments.empty());
  for (const Relation& f : fragments) {
    MPCQP_CHECK_EQ(f.arity(), fragments.front().arity());
  }
  return DistRelation(std::move(fragments));
}

DistRelation DistRelation::Scatter(const Relation& input, int num_servers,
                                   ThreadPool* pool) {
  MPCQP_CHECK_GT(num_servers, 0);
  DistRelation out(input.arity(), num_servers);
  if (num_servers == 1) {
    out.fragments_[0] = input;  // COW handle: no bytes move.
    return out;
  }
  const int64_t n = input.size();
  const auto place = [&](int s) {
    // Server s gets rows [s*n/p, (s+1)*n/p), copied in one block.
    const int64_t begin = s * n / num_servers;
    const int64_t end = (s + 1) * n / num_servers;
    out.fragments_[s].AppendRange(input, begin, end);
  };
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int s = 0; s < num_servers; ++s) place(s);
  } else {
    // Fragments are distinct objects reading one shared immutable payload,
    // so the block copies are embarrassingly parallel.
    pool->ParallelFor(num_servers,
                      [&](int64_t s) { place(static_cast<int>(s)); });
  }
  return out;
}

int64_t DistRelation::TotalSize() const {
  int64_t total = 0;
  for (const Relation& f : fragments_) total += f.size();
  return total;
}

int64_t DistRelation::MaxFragmentSize() const {
  int64_t best = 0;
  for (const Relation& f : fragments_) best = std::max(best, f.size());
  return best;
}

Relation& DistRelation::fragment(int server) {
  MPCQP_CHECK_GE(server, 0);
  MPCQP_CHECK_LT(server, num_servers());
  return fragments_[server];
}

const Relation& DistRelation::fragment(int server) const {
  MPCQP_CHECK_GE(server, 0);
  MPCQP_CHECK_LT(server, num_servers());
  return fragments_[server];
}

Relation DistRelation::Collect(ThreadPool* pool) const {
  if (fragments_.size() == 1) return fragments_[0];  // COW handle.
  Relation out(arity_);
  if (arity_ == 0 || pool == nullptr || pool->num_threads() <= 1) {
    out.Reserve(TotalSize());
    for (const Relation& f : fragments_) out.Append(f);
    return out;
  }
  // Pool path: pre-size once, then memcpy (fragment, row-range) tiles into
  // their exact offsets — the same bytes the serial append writes.
  struct Tile {
    int src;
    int64_t begin;
    int64_t end;
    int64_t at;  // Destination row offset.
  };
  std::vector<Tile> tiles;
  int64_t total = 0;
  for (int s = 0; s < num_servers(); ++s) {
    const int64_t n = fragments_[s].size();
    for (int64_t begin = 0; begin < n; begin += kBulkMorselRows) {
      const int64_t end = std::min(n, begin + kBulkMorselRows);
      tiles.push_back({s, begin, end, total + begin});
    }
    total += n;
  }
  Value* base = out.ResizeRowsForOverwrite(total);
  pool->ParallelForGrained(
      static_cast<int64_t>(tiles.size()), 1, [&](int64_t tb, int64_t te) {
        for (int64_t t = tb; t < te; ++t) {
          const Tile& tile = tiles[t];
          const Relation& f = fragments_[tile.src];
          std::memcpy(base + tile.at * arity_,
                      f.row(0) + tile.begin * arity_,
                      static_cast<size_t>(tile.end - tile.begin) * arity_ *
                          sizeof(Value));
        }
      });
  return out;
}

}  // namespace mpcqp
