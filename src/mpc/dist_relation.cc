#include "mpc/dist_relation.h"

#include <algorithm>

#include "common/check.h"

namespace mpcqp {

DistRelation::DistRelation(int arity, int num_servers) : arity_(arity) {
  MPCQP_CHECK_GT(num_servers, 0);
  fragments_.assign(num_servers, Relation(arity));
}

DistRelation::DistRelation(std::vector<Relation> fragments)
    : arity_(fragments.front().arity()), fragments_(std::move(fragments)) {}

DistRelation DistRelation::FromFragments(std::vector<Relation> fragments) {
  MPCQP_CHECK(!fragments.empty());
  for (const Relation& f : fragments) {
    MPCQP_CHECK_EQ(f.arity(), fragments.front().arity());
  }
  return DistRelation(std::move(fragments));
}

DistRelation DistRelation::Scatter(const Relation& input, int num_servers) {
  MPCQP_CHECK_GT(num_servers, 0);
  DistRelation out(input.arity(), num_servers);
  const int64_t n = input.size();
  for (int s = 0; s < num_servers; ++s) {
    // Server s gets rows [s*n/p, (s+1)*n/p).
    const int64_t begin = s * n / num_servers;
    const int64_t end = (s + 1) * n / num_servers;
    out.fragments_[s].Reserve(end - begin);
    for (int64_t i = begin; i < end; ++i) {
      out.fragments_[s].AppendRowFrom(input, i);
    }
  }
  return out;
}

int64_t DistRelation::TotalSize() const {
  int64_t total = 0;
  for (const Relation& f : fragments_) total += f.size();
  return total;
}

int64_t DistRelation::MaxFragmentSize() const {
  int64_t best = 0;
  for (const Relation& f : fragments_) best = std::max(best, f.size());
  return best;
}

Relation& DistRelation::fragment(int server) {
  MPCQP_CHECK_GE(server, 0);
  MPCQP_CHECK_LT(server, num_servers());
  return fragments_[server];
}

const Relation& DistRelation::fragment(int server) const {
  MPCQP_CHECK_GE(server, 0);
  MPCQP_CHECK_LT(server, num_servers());
  return fragments_[server];
}

Relation DistRelation::Collect() const {
  Relation out(arity_);
  out.Reserve(TotalSize());
  for (const Relation& f : fragments_) {
    for (int64_t i = 0; i < f.size(); ++i) out.AppendRowFrom(f, i);
  }
  return out;
}

}  // namespace mpcqp
