#include "mpc/set_ops.h"

#include <vector>

#include "common/check.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

std::vector<int> AllColumns(int arity) {
  std::vector<int> cols(arity);
  for (int c = 0; c < arity; ++c) cols[c] = c;
  return cols;
}

// Co-partitions both inputs by whole-tuple hash and applies `combine` to
// each server's pair of (locally deduplicated) fragments.
template <typename Combine>
DistRelation PartitionAndCombine(Cluster& cluster, const DistRelation& a,
                                 const DistRelation& b, const char* label,
                                 Combine combine) {
  MPCQP_CHECK_EQ(a.arity(), b.arity());
  MPCQP_CHECK_GT(a.arity(), 0);
  const int p = cluster.num_servers();
  const std::vector<int> cols = AllColumns(a.arity());
  const HashFunction hash = cluster.NewHashFunction();
  cluster.BeginRound(label);
  // Local dedup first: at most one copy of each tuple leaves a server.
  DistRelation a_local(a.arity(), p);
  DistRelation b_local(b.arity(), p);
  for (int s = 0; s < p; ++s) {
    a_local.fragment(s) = Dedup(a.fragment(s), &cluster.pool());
    b_local.fragment(s) = Dedup(b.fragment(s), &cluster.pool());
  }
  const DistRelation a_parts = HashPartition(cluster, a_local, cols, hash, "");
  const DistRelation b_parts = HashPartition(cluster, b_local, cols, hash, "");
  cluster.EndRound();

  std::vector<Relation> outputs;
  outputs.reserve(p);
  for (int s = 0; s < p; ++s) {
    outputs.push_back(
        combine(Dedup(a_parts.fragment(s), &cluster.pool()),
                Dedup(b_parts.fragment(s), &cluster.pool())));
  }
  return DistRelation::FromFragments(std::move(outputs));
}

}  // namespace

DistRelation DistributedDistinct(Cluster& cluster, const DistRelation& rel) {
  MPCQP_CHECK_GT(rel.arity(), 0);
  const int p = cluster.num_servers();
  const std::vector<int> cols = AllColumns(rel.arity());
  DistRelation local(rel.arity(), p);
  for (int s = 0; s < p; ++s) {
    local.fragment(s) = Dedup(rel.fragment(s), &cluster.pool());
  }
  const HashFunction hash = cluster.NewHashFunction();
  const DistRelation parts =
      HashPartition(cluster, local, cols, hash, "distributed distinct");
  std::vector<Relation> outputs;
  outputs.reserve(p);
  for (int s = 0; s < p; ++s) {
    outputs.push_back(Dedup(parts.fragment(s), &cluster.pool()));
  }
  return DistRelation::FromFragments(std::move(outputs));
}

DistRelation DistributedUnion(Cluster& cluster, const DistRelation& a,
                              const DistRelation& b) {
  return PartitionAndCombine(
      cluster, a, b, "distributed union",
      [](const Relation& x, const Relation& y) {
        return Dedup(UnionAll(x, y));
      });
}

DistRelation DistributedIntersect(Cluster& cluster, const DistRelation& a,
                                  const DistRelation& b) {
  return PartitionAndCombine(
      cluster, a, b, "distributed intersect",
      [](const Relation& x, const Relation& y) {
        std::vector<int> cols(x.arity());
        for (int c = 0; c < x.arity(); ++c) cols[c] = c;
        return SemijoinLocal(x, y, cols, cols);
      });
}

DistRelation DistributedDifference(Cluster& cluster, const DistRelation& a,
                                   const DistRelation& b) {
  return PartitionAndCombine(
      cluster, a, b, "distributed difference",
      [](const Relation& x, const Relation& y) {
        std::vector<int> cols(x.arity());
        for (int c = 0; c < x.arity(); ++c) cols[c] = c;
        return AntijoinLocal(x, y, cols, cols);
      });
}

}  // namespace mpcqp
