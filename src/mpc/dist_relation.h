#ifndef MPCQP_MPC_DIST_RELATION_H_
#define MPCQP_MPC_DIST_RELATION_H_

#include <cstdint>
#include <vector>

#include "relation/relation.h"

namespace mpcqp {

class ThreadPool;

// A relation horizontally partitioned across the servers of a cluster:
// fragment s lives on server s. The simulator's algorithms transform
// DistRelations with exchange primitives (metered) and per-fragment local
// computation (free, per the MPC model).
class DistRelation {
 public:
  // An empty distributed relation with the given arity on `num_servers`.
  DistRelation(int arity, int num_servers);

  // Adopts existing fragments (all must share one arity; at least one).
  static DistRelation FromFragments(std::vector<Relation> fragments);

  // Initial placement of an input: block-partitions `input` evenly across
  // servers (each gets ceil/floor of size/p contiguous rows). Initial
  // placement is NOT communication: the MPC model assumes inputs start
  // spread O(IN/p) per server (deck slide 6). A non-null `pool` tiles the
  // per-fragment block copies over its workers (the result is identical).
  static DistRelation Scatter(const Relation& input, int num_servers,
                              ThreadPool* pool = nullptr);

  int arity() const { return arity_; }
  int num_servers() const { return static_cast<int>(fragments_.size()); }
  int64_t TotalSize() const;
  // Max fragment size: the current per-server storage in tuples.
  int64_t MaxFragmentSize() const;

  Relation& fragment(int server);
  const Relation& fragment(int server) const;

  // Concatenates all fragments into one local relation (test/verification
  // helper; not metered). A non-null `pool` runs the fragment copies as
  // morsel-tiled tasks (identical result).
  Relation Collect(ThreadPool* pool = nullptr) const;

 private:
  explicit DistRelation(std::vector<Relation> fragments);

  int arity_;
  std::vector<Relation> fragments_;
};

}  // namespace mpcqp

#endif  // MPCQP_MPC_DIST_RELATION_H_
