#ifndef MPCQP_MPC_METRICS_H_
#define MPCQP_MPC_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mpc/cost.h"

namespace mpcqp {

class Cluster;

// Execution phases of one simulated MPC round, as seen by the data plane:
//   kRoute        — phase 1 of an exchange: morsel-parallel per-tuple
//                   destination computation and per-(morsel, dst) tallying
//                   (no bytes move);
//   kCount        — the offset/prefix-sum pass plus destination-fragment
//                   pre-sizing between the two morsel phases (parallel
//                   over destinations, includes per-(src, dst) metering);
//   kCopy         — phase 2: morsel-parallel bulk memcpy of tuples into
//                   their final positions, write-combining at large p
//                   (includes Broadcast payload construction);
//   kLocalCompute — per-server algorithm work (local joins, sorts, block
//                   multiplies), whether inside or after a metered round;
//   kTranspose    — row<->column layout conversions: key-column extraction
//                   ahead of a columnar route pass and ColumnarRelation
//                   transposes on metered paths (subset of the round wall,
//                   runs inside kRoute's bracket but is tallied apart so
//                   the layout cost is observable);
//   kColumnarScan — local scans that ran the columnar kernel (selection /
//                   semijoin / group-by fast paths), split out from
//                   kLocalCompute so `--layout` effects show in --stats.
enum class Phase {
  kRoute = 0,
  kCount = 1,
  kCopy = 2,
  kLocalCompute = 3,
  kTranspose = 4,
  kColumnarScan = 5,
};
inline constexpr int kNumPhases = 6;
const char* PhaseName(Phase phase);

// Always-on aggregate timing/volume metrics for one Cluster, the runtime
// complement of the deterministic CostReport: where CostReport answers
// "how many tuples moved" (and is bit-identical across thread counts),
// MpcMetrics answers "how long did it take and how was the time split
// across phases". Collection cost is a handful of steady-clock reads per
// round — it is never compiled out and never feeds back into results.
//
// Thread-safety: phase times and fragment peaks may be recorded from pool
// workers concurrently (atomics); Begin/EndRound follow Cluster's
// single-threaded round protocol.
class MpcMetrics {
 public:
  // Wall time and per-phase breakdown of one metered round, aligned 1:1
  // with CostReport::rounds().
  struct RoundRecord {
    std::string label;
    double wall_ms = 0;
    double phase_ms[kNumPhases] = {};
    // COW payload clones forced during the round (see TraceCounters).
    int64_t cow_detaches = 0;
    // Largest destination fragment (rows) built by an exchange this round.
    int64_t peak_fragment_rows = 0;
  };

  MpcMetrics();

  void BeginRound(const std::string& label);
  void EndRound();

  // Adds `nanos` to `phase` of the current round, or to the outside-round
  // bucket when no round is open (e.g. post-shuffle local joins).
  void AddPhaseNanos(Phase phase, int64_t nanos);
  // Records a destination-fragment size; kept as a running max.
  void RecordFragmentRows(int64_t rows);

  // Records one planner invocation (ExecutePlannedQuery calls this): time
  // spent planning and whether the plan cache served it. Cache-hit counts
  // are the observable proof that warm queries skip enumeration.
  void RecordPlanning(double planning_ms, bool cache_hit);

  // --- Per-cluster COW attribution (multi-query serving) ---
  // The counters a Cluster's ExecContext points at: while the cluster's
  // ScopedExecution is installed, Relation::Mutable() charges its COW
  // detaches here (as well as to the process-wide TraceCounters).
  std::atomic<int64_t>& attributed_cow_detaches() { return local_detaches_; }
  std::atomic<int64_t>& attributed_cow_detach_bytes() {
    return local_detach_bytes_;
  }
  // Switches per-round and total detach accounting from the legacy
  // process-wide snapshot diff to the attributed counters above. Sticky
  // until Reset(); Cluster::ScopedExecution sets it, so any cluster
  // executed under a scope reports exactly its own detaches even with
  // other queries detaching concurrently.
  void EnableCowAttribution();
  bool cow_attribution_enabled() const { return attributed_; }

  const std::vector<RoundRecord>& rounds() const { return rounds_; }
  double outside_phase_ms(Phase phase) const;
  double planning_ms() const { return planning_ms_; }
  int64_t plan_cache_hits() const { return plan_cache_hits_; }
  int64_t plan_cache_misses() const { return plan_cache_misses_; }
  int64_t peak_fragment_rows() const {
    return peak_fragment_rows_.load(std::memory_order_relaxed);
  }
  // COW detaches since construction/Reset. With cow_attribution_enabled()
  // this is exactly the detaches charged to THIS cluster's queries (the
  // serving runtime's per-query isolation); otherwise it is the legacy
  // process-wide counter delta, where concurrent clusters see each
  // other's detaches (fine for the single-query tools and tests).
  int64_t total_cow_detaches() const;

  // Forgets all records (paired with Cluster::ResetCosts).
  void Reset();

 private:
  // The detach counter rounds and totals diff against: the attributed
  // local counter when attribution is on, TraceCounters otherwise.
  int64_t DetachesNow() const;

  std::vector<RoundRecord> rounds_;
  bool in_round_ = false;
  RoundRecord current_;
  int64_t round_start_ns_ = 0;
  int64_t round_start_detaches_ = 0;
  int64_t baseline_detaches_ = 0;
  bool attributed_ = false;
  std::atomic<int64_t> local_detaches_{0};
  std::atomic<int64_t> local_detach_bytes_{0};
  std::atomic<int64_t> current_phase_ns_[kNumPhases];
  std::atomic<int64_t> outside_phase_ns_[kNumPhases];
  std::atomic<int64_t> peak_fragment_rows_{0};
  std::atomic<int64_t> current_peak_rows_{0};
  double planning_ms_ = 0;
  int64_t plan_cache_hits_ = 0;
  int64_t plan_cache_misses_ = 0;
};

// RAII phase timer; records the scope's wall time into `metrics`.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(MpcMetrics& metrics, Phase phase);
  ~ScopedPhaseTimer();

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  MpcMetrics& metrics_;
  Phase phase_;
  int64_t start_ns_;
};

// The machine-readable run summary: the CostReport's (L, r) extended with
// wall time, bytes moved, phase breakdowns, peak fragment sizes, and COW
// detach counts. Built by zipping Cluster::cost_report() with
// Cluster::metrics().
struct StatsReport {
  struct Round {
    std::string label;
    int64_t max_tuples_received = 0;
    int64_t total_tuples_received = 0;
    int64_t max_values_received = 0;
    int64_t total_values_received = 0;
    int64_t bytes_received = 0;  // total_values_received * sizeof(Value)
    double wall_ms = 0;
    double phase_ms[kNumPhases] = {};
    int64_t cow_detaches = 0;
    int64_t peak_fragment_rows = 0;
  };

  std::vector<Round> rounds;
  int num_rounds = 0;            // r
  int64_t max_load_tuples = 0;   // L (tuples)
  int64_t max_load_values = 0;   // L (values)
  int64_t total_comm_tuples = 0;
  int64_t total_bytes = 0;
  double total_wall_ms = 0;  // Round walls + outside-round phase time.
  double planning_ms = 0;    // Time inside PlanQuery (not in total_wall_ms).
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  double outside_phase_ms[kNumPhases] = {};
  int64_t cow_detaches = 0;
  int64_t peak_fragment_rows = 0;
  // The SIMD level the hot-loop kernels dispatched to (simd::DispatchedIsa
  // at report-build time): "scalar", "sse4", "neon", or "avx2". Recorded
  // so wall-time trajectories are comparable across boxes — a kernel can
  // only be judged against runs at the same level.
  std::string simd_isa;

  // Pretty-printed JSON object (the --stats sink and the BenchJson field).
  std::string ToJson() const;
};

StatsReport BuildStatsReport(const Cluster& cluster);
Status WriteStatsJson(const StatsReport& report, const std::string& path);

}  // namespace mpcqp

#endif  // MPCQP_MPC_METRICS_H_
